#include "channel/scatterer.h"

#include <cmath>

#include "common/angles.h"

namespace polardraw::channel {

Vec3 Scatterer::position_at(double t_s) const {
  if (motion == ScattererMotion::kStatic) return position;
  const double phase = kTwoPi * t_s / walk_period_s;
  return position + walk_direction * (walk_amplitude_m * std::sin(phase));
}

Scatterer make_bystander_static(double distance_m, const Vec3& board_center) {
  Scatterer s;
  s.label = "bystander-static";
  // A person standing beside the writing area, `distance_m` off the board.
  s.position = board_center + Vec3{0.45, 0.0, distance_m};
  s.motion = ScattererMotion::kStatic;
  // A human torso is a strong, fairly depolarizing reflector.
  s.reflectivity = 0.55;
  s.depolarization = 0.85;
  s.reflected_axis = Vec3{0.2, 0.9, 0.39};  // mostly vertical (standing)
  return s;
}

Scatterer make_bystander_walking(double distance_m, const Vec3& board_center) {
  Scatterer s = make_bystander_static(distance_m, board_center);
  s.label = "bystander-walking";
  s.motion = ScattererMotion::kWalking;
  s.walk_direction = Vec3{1.0, 0.0, 0.0};
  s.walk_amplitude_m = 0.6;
  s.walk_period_s = 2.4;  // ~1 m/s walking speed over the sweep
  return s;
}

Scatterer make_office_clutter(int index) {
  Scatterer s;
  s.label = "clutter-" + std::to_string(index);
  // Deterministic pseudo-layout: desks/cabinets around the board.
  const double angle = 0.9 + 1.7 * static_cast<double>(index);
  s.position = Vec3{0.5 + 1.5 * std::cos(angle), 0.3 + 0.4 * std::sin(angle),
                    1.2 + 0.5 * std::sin(2.0 * angle)};
  s.motion = ScattererMotion::kStatic;
  s.reflectivity = 0.20;
  s.depolarization = 0.6;
  s.reflected_axis =
      Vec3{std::cos(angle * 1.3), std::sin(angle * 1.3), 0.4}.normalized();
  return s;
}

}  // namespace polardraw::channel
