#include "channel/noise.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"
#include "common/units.h"

namespace polardraw::channel {

NoisyObservation observe(const std::complex<double>& response,
                         const NoiseConfig& cfg, Rng& rng) {
  NoisyObservation out;

  const double signal_mw = std::norm(response);
  const double noise_mw =
      dbm_to_mw(cfg.noise_floor_dbm) / std::max(cfg.modulation_snr_gain, 1e-6);

  // Complex AWGN added at the receiver front end.
  const double sigma = std::sqrt(noise_mw / 2.0);
  const std::complex<double> noisy =
      response + std::complex<double>(rng.gaussian(0.0, sigma),
                                      rng.gaussian(0.0, sigma));

  const double rx_mw = std::norm(noisy);
  out.rss_dbm = mw_to_dbm(rx_mw) + rng.gaussian(0.0, cfg.rss_jitter_db);
  out.snr_db = ratio_to_db(signal_mw / noise_mw);

  // Phase of the noisy response plus the PLL floor. At low SNR the AWGN
  // already dominates the phase; the floor matters only at high SNR.
  // Sign convention: readers report the accumulated round-trip phase
  // 4*pi*d/lambda (growing with distance), i.e. the negative of the
  // baseband argument of e^{-j*4*pi*d/lambda}.
  double phase = -std::arg(noisy);
  phase += rng.gaussian(0.0, cfg.phase_noise_floor_rad);
  out.phase_rad = wrap_2pi(phase);
  return out;
}

}  // namespace polardraw::channel
