#include "channel/multipath.h"

#include <cmath>

#include "common/angles.h"
#include "common/units.h"
#include "em/constants.h"
#include "em/polarization.h"

namespace polardraw::channel {

namespace {

/// Mixes the incident polarization axis toward the scatterer's reflected
/// axis according to its depolarization coefficient.
Vec3 reflected_polarization(const Vec3& incident_axis, const Scatterer& s) {
  const Vec3 mixed =
      incident_axis * (1.0 - s.depolarization) + s.reflected_axis * s.depolarization;
  const Vec3 n = mixed.normalized();
  return n == Vec3{} ? s.reflected_axis : n;
}

}  // namespace

ChannelSample MultipathChannel::evaluate(const em::ReaderAntenna& antenna,
                                         const em::Tag& tag,
                                         const em::TxConfig& tx,
                                         double t_s) const {
  ChannelSample out;
  const double lambda = tx.wavelength_m();
  const double p_tx_mw = dbm_to_mw(tx.power_dbm);
  const double g_tag = db_to_ratio(tag.gain_dbi);
  const double l_mod = db_to_ratio(tag.modulation_loss_db);

  // --- Line-of-sight path -------------------------------------------------
  const em::LinkSample los = em::evaluate_los_link(antenna, tag, tx);
  out.los_response = los.response;
  out.los_mismatch_rad = los.mismatch_rad;
  out.los_distance_m = los.distance_m;
  out.response = los.response;
  double tag_power_mw = dbm_to_mw(los.forward_power_dbm);

  // --- Single-bounce reflected paths --------------------------------------
  // Forward: antenna -> scatterer -> tag. Reverse (reciprocal): tag ->
  // scatterer -> antenna. We model the round trip through the same
  // scatterer; cross terms (LOS out, reflection back) are folded in with
  // the same machinery by treating each direction's coupling independently.
  for (const Scatterer& s : scatterers_) {
    const Vec3 sp = s.position_at(t_s);
    const double d1 = antenna.position.dist(sp);  // antenna -> scatterer
    const double d2 = sp.dist(tag.position);      // scatterer -> tag
    if (d1 <= 0.0 || d2 <= 0.0) continue;
    const Vec3 dir_as = (sp - antenna.position) / d1;
    const Vec3 dir_st = (tag.position - sp) / d2;

    // Polarization bookkeeping along the forward bounce.
    double chi_fwd;
    Vec3 axis_after_bounce;
    if (antenna.mode == em::PolarizationMode::kLinear) {
      axis_after_bounce = reflected_polarization(antenna.polarization_axis, s);
      const double beta_tag =
          em::mismatch_angle(axis_after_bounce, tag.dipole_axis, dir_st);
      chi_fwd = em::malus_factor(beta_tag);
      (void)dir_as;
    } else {
      axis_after_bounce = reflected_polarization(s.reflected_axis, s);
      chi_fwd = 0.5;
    }

    const double fs1 = em::free_space_gain(d1, lambda);
    const double fs2 = em::free_space_gain(d2, lambda);
    const double g_ant = antenna.gain_toward(sp);

    // Power reaching the tag chip via this bounce.
    const double p_fwd_mw =
        p_tx_mw * g_ant * fs1 * s.reflectivity * fs2 * g_tag * chi_fwd;
    tag_power_mw += p_fwd_mw;

    // Reverse traversal: tag re-radiates along its dipole axis; the bounce
    // depolarizes again before reaching the (polarized) antenna.
    double chi_rev;
    if (antenna.mode == em::PolarizationMode::kLinear) {
      const Vec3 axis_back = reflected_polarization(tag.dipole_axis, s);
      const double beta_ant = em::mismatch_angle(
          axis_back, antenna.polarization_axis, -dir_as);
      chi_rev = em::malus_factor(beta_ant);
    } else {
      chi_rev = 0.5;
    }

    const double p_rx_mw =
        p_fwd_mw * l_mod * g_tag * fs2 * s.reflectivity * fs1 * g_ant * chi_rev;
    const double path_len = d1 + d2;  // one-way geometric length
    const double phase = em::round_trip_phase(path_len, lambda);
    out.response += std::polar(std::sqrt(p_rx_mw), -phase);
  }

  out.tag_power_dbm = mw_to_dbm(tag_power_mw);
  return out;
}

MultipathChannel make_office_channel(int clutter_count) {
  MultipathChannel ch;
  for (int i = 0; i < clutter_count; ++i) {
    ch.add(make_office_clutter(i));
  }
  return ch;
}

}  // namespace polardraw::channel
