// Multipath backscatter channel.
//
// Combines the line-of-sight backscatter path with single-bounce reflected
// paths (reader -> scatterer -> tag -> reader and the reciprocal), producing
// the complex baseband response each reader antenna observes. This is the
// mechanism behind the paper's two key empirical observations:
//
//  * When the tag is roughly co-polarized with the antenna, the LOS path
//    dominates and phase tracks 4*pi*d/lambda.
//  * When the tag is cross-polarized (mismatch near 90 degrees), the LOS
//    term collapses (cos^2 -> 0) but depolarized reflections survive, so
//    the reader still occasionally decodes the tag -- with a phase set by
//    the reflection geometry, i.e. the "spurious" readings of section 2.
#pragma once

#include <complex>
#include <vector>

#include "channel/scatterer.h"
#include "em/antenna.h"
#include "em/propagation.h"
#include "em/tag.h"

namespace polardraw::channel {

/// Full channel response for one antenna at one instant.
struct ChannelSample {
  /// Sum of LOS + reflected complex path responses (sqrt(mW) amplitude).
  std::complex<double> response{0.0, 0.0};

  /// Total power delivered to the tag chip (all forward paths), dBm.
  double tag_power_dbm = -150.0;

  /// LOS-only diagnostic copies (used by tests and the feasibility bench).
  std::complex<double> los_response{0.0, 0.0};
  double los_mismatch_rad = 0.0;
  double los_distance_m = 0.0;
};

/// The propagation environment: a set of scatterers shared by all antennas.
class MultipathChannel {
 public:
  MultipathChannel() = default;
  explicit MultipathChannel(std::vector<Scatterer> scatterers)
      : scatterers_(std::move(scatterers)) {}

  void add(Scatterer s) { scatterers_.push_back(std::move(s)); }
  const std::vector<Scatterer>& scatterers() const { return scatterers_; }
  void clear() { scatterers_.clear(); }

  /// Evaluates the channel between `antenna` and `tag` at simulation time
  /// `t_s` (time matters for walking scatterers).
  ChannelSample evaluate(const em::ReaderAntenna& antenna, const em::Tag& tag,
                         const em::TxConfig& tx, double t_s) const;

 private:
  std::vector<Scatterer> scatterers_;
};

/// A typical cluttered-office environment: a handful of weak static
/// reflectors, per the paper's experimental setting.
MultipathChannel make_office_channel(int clutter_count = 4);

}  // namespace polardraw::channel
