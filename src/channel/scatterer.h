// Environmental scatterers for the multipath channel.
//
// The paper's feasibility study (section 2) observes that when the tag is
// cross-polarized to the antenna, it still harvests energy via reflected
// (non-line-of-sight) paths whose polarization has been rotated by the
// reflection — producing "spurious" phase readings. Section 5.2.5 further
// studies a bystander standing (static multipath) or walking (dynamic
// multipath) near the whiteboard. This module models both.
#pragma once

#include <string>

#include "common/vec.h"

namespace polardraw::channel {

/// Motion model of a scatterer.
enum class ScattererMotion {
  kStatic,   // walls, furniture, a standing bystander
  kWalking,  // a bystander walking near the board
};

/// A point scatterer that reflects the reader's signal toward the tag
/// (and the tag's backscatter toward the reader) with attenuation and a
/// polarization rotation.
struct Scatterer {
  std::string label;

  /// Nominal position, board coordinates, meters.
  Vec3 position;

  ScattererMotion motion = ScattererMotion::kStatic;

  /// Walking model: sinusoidal oscillation around `position`.
  Vec3 walk_direction{1.0, 0.0, 0.0};  // unit vector of the walk line
  double walk_amplitude_m = 0.5;       // half the walk span
  double walk_period_s = 3.0;          // time per full back-and-forth

  /// Power reflection coefficient (linear, 0..1) per bounce.
  double reflectivity = 0.1;

  /// How strongly the reflection rotates polarization: 0 preserves the
  /// incident axis, 1 fully scrambles toward the scatterer's own axis.
  double depolarization = 0.7;

  /// Effective polarization axis the reflected field is rotated toward.
  Vec3 reflected_axis{0.3, 0.8, 0.52};

  /// Position at simulation time t (walking scatterers oscillate).
  Vec3 position_at(double t_s) const;
};

/// A standing bystander at `distance_m` in front of the board center
/// (paper Fig. 16, "static multi-path").
Scatterer make_bystander_static(double distance_m, const Vec3& board_center);

/// A walking bystander sweeping laterally at `distance_m` standoff
/// (paper Fig. 16, "dynamic multi-path").
Scatterer make_bystander_walking(double distance_m, const Vec3& board_center);

/// Background office clutter: a weak static reflector off to the side.
/// Deployed by default so even the "clean" environment is not free-space.
Scatterer make_office_clutter(int index);

}  // namespace polardraw::channel
