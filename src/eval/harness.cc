#include "eval/harness.h"

#include <algorithm>
#include <array>
#include <chrono>

#include "baselines/rfidraw.h"
#include "baselines/tagoram.h"
#include "common/seed.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/polardraw.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recognition/procrustes.h"

namespace polardraw::eval {

std::string to_string(System s) {
  switch (s) {
    case System::kPolarDraw: return "PolarDraw (2-antenna)";
    case System::kPolarDrawNoPol: return "PolarDraw w/o polarization";
    case System::kPolarDrawNoPolPhaseDir:
      return "PolarDraw w/o polarization (+phase dir)";
    case System::kTagoram2: return "Tagoram (2-antenna)";
    case System::kTagoram4: return "Tagoram (4-antenna)";
    case System::kRfIdraw4: return "RF-IDraw (4-antenna)";
  }
  return "unknown";
}

void apply_system_layout(TrialConfig& cfg) {
  switch (cfg.system) {
    case System::kPolarDraw:
    case System::kPolarDrawNoPol:
    case System::kPolarDrawNoPolPhaseDir:
      cfg.scene.layout = sim::RigLayout::kPolarDrawTwoAntenna;
      break;
    case System::kTagoram2:
      cfg.scene.layout = sim::RigLayout::kTagoramTwoAntenna;
      break;
    case System::kTagoram4:
      cfg.scene.layout = sim::RigLayout::kTagoramFourAntenna;
      break;
    case System::kRfIdraw4:
      cfg.scene.layout = sim::RigLayout::kRfIdrawFourAntenna;
      break;
  }
  cfg.algo.use_polarization = cfg.system != System::kPolarDrawNoPol &&
                              cfg.system != System::kPolarDrawNoPolPhaseDir;
  cfg.algo.use_phase_direction =
      cfg.system != System::kPolarDrawNoPol;
  cfg.algo.gamma_rad = cfg.scene.gamma_rad;
  cfg.algo.board_width_m = cfg.scene.board_width_m;
  cfg.algo.board_height_m = cfg.scene.board_height_m;
}

namespace {
double seconds_between(std::chrono::steady_clock::time_point t0,
                       std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}
}  // namespace

TrialResult run_trial(const std::string& text, const TrialConfig& cfg_in) {
  // Stage boundaries are read once and shared between StageTimings and the
  // tracer's per-stage 'X' events, so tracing adds no clock reads here.
  obs::Tracer& tracer = obs::Tracer::global();
  const bool tracing = tracer.enabled();
  static const obs::TraceName synth_name("eval.stage.synth");
  static const obs::TraceName reader_name("eval.stage.reader");
  static const obs::TraceName track_name("eval.stage.track");
  static const obs::TraceName classify_name("eval.stage.classify");

  // polarlint-allow(R7): stage-timing measurement only; never feeds the decode.
  const auto trial_start = std::chrono::steady_clock::now();
  TrialConfig cfg = cfg_in;
  apply_system_layout(cfg);
  cfg.scene.seed = cfg.seed;

  TrialResult out;
  out.text = text;

  // --- Synthesize the writing and run the reader -------------------------
  sim::Scene scene(cfg.scene);
  Rng rng(cfg.seed * 7919 + 13);
  // polarlint-allow(R7): stage-timing measurement only; never feeds the decode.
  auto stage_start = std::chrono::steady_clock::now();
  const auto trace = handwriting::synthesize(text, cfg.synth, rng);
  // polarlint-allow(R7): stage-timing measurement only; never feeds the decode.
  auto stage_end = std::chrono::steady_clock::now();
  out.stages.synth_s = seconds_between(stage_start, stage_end);
  if (tracing) tracer.complete(synth_name.id(), stage_start, stage_end);
  stage_start = stage_end;
  const auto reports = scene.run(trace);
  // polarlint-allow(R7): stage-timing measurement only; never feeds the decode.
  stage_end = std::chrono::steady_clock::now();
  out.stages.reader_s = seconds_between(stage_start, stage_end);
  if (tracing) tracer.complete(reader_name.id(), stage_start, stage_end);
  out.report_count = reports.size();
  out.ground_truth = handwriting::flatten_strokes(trace.ground_truth);

  // --- Track ---------------------------------------------------------------
  // polarlint-allow(R7): stage-timing measurement only; never feeds the decode.
  stage_start = std::chrono::steady_clock::now();
  const core::PhaseCalibration cal{scene.reader().port_phase_offsets()};
  switch (cfg.system) {
    case System::kPolarDraw:
    case System::kPolarDrawNoPol:
    case System::kPolarDrawNoPolPhaseDir: {
      const auto apos = scene.antenna_board_positions();
      // Antennas sit above the board; the tracker needs their board-plane
      // positions and the standoff that lifts them off the writing plane.
      core::PolarDraw tracker(cfg.algo, apos[0], apos[1], 0.12);
      out.trajectory = tracker.track(reports, &cal).trajectory;
      break;
    }
    case System::kTagoram2:
    case System::kTagoram4: {
      baselines::TagoramConfig tcfg;
      tcfg.grid.board_width_m = cfg.scene.board_width_m;
      tcfg.grid.board_height_m = cfg.scene.board_height_m;
      tcfg.grid.window_s = cfg.algo.window_s;
      tcfg.grid.vmax_mps = cfg.algo.vmax_mps;
      tcfg.grid.block_m = cfg.algo.block_m;
      tcfg.wavelength_m = cfg.algo.wavelength_m;
      baselines::TagoramTracker tracker(tcfg, scene.antennas());
      out.trajectory = tracker.track(reports);
      break;
    }
    case System::kRfIdraw4: {
      baselines::RfIdrawConfig rcfg;
      rcfg.grid.board_width_m = cfg.scene.board_width_m;
      rcfg.grid.board_height_m = cfg.scene.board_height_m;
      rcfg.grid.window_s = cfg.algo.window_s;
      rcfg.grid.vmax_mps = cfg.algo.vmax_mps;
      rcfg.grid.block_m = cfg.algo.block_m;
      rcfg.wavelength_m = cfg.algo.wavelength_m;
      baselines::RfIdrawTracker tracker(
          rcfg, scene.antennas(), {{0, 1}, {2, 3}},
          scene.reader().port_phase_offsets());
      out.trajectory = tracker.track(reports);
      break;
    }
  }
  // polarlint-allow(R7): stage-timing measurement only; never feeds the decode.
  stage_end = std::chrono::steady_clock::now();
  out.stages.track_s = seconds_between(stage_start, stage_end);
  if (tracing) tracer.complete(track_name.id(), stage_start, stage_end);

  // --- Score ----------------------------------------------------------------
  stage_start = stage_end;
  if (!out.trajectory.empty() && out.ground_truth.size() >= 2) {
    out.procrustes_m =
        recognition::procrustes_distance(out.ground_truth, out.trajectory);
  }
  static const recognition::LetterClassifier classifier;
  std::string letters;
  for (char c : text) {
    if (handwriting::has_glyph(c)) letters.push_back(c);
  }
  if (letters.size() <= 1) {
    out.recognized = std::string(
        1, classifier.classify(out.trajectory).letter);
    out.all_correct =
        !letters.empty() &&
        std::toupper(static_cast<unsigned char>(letters[0])) ==
            out.recognized[0];
  } else {
    // Words are judged with the length-group lexicon, mirroring the
    // paper's dictionary-backed recognizer over O.E.D. test words.
    std::vector<std::string> lexicon;
    for (std::size_t i = 0; i < 10; ++i) {
      lexicon.push_back(test_word(letters.size(), i));
    }
    out.recognized = classifier.classify_word_lexicon(out.trajectory, lexicon);
    std::string upper;
    for (char c : letters)
      upper.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    out.all_correct = out.recognized == upper;
  }
  // polarlint-allow(R7): stage-timing measurement only; never feeds the decode.
  stage_end = std::chrono::steady_clock::now();
  out.stages.classify_s = seconds_between(stage_start, stage_end);
  if (tracing) tracer.complete(classify_name.id(), stage_start, stage_end);
  out.wall_s = seconds_between(trial_start, stage_end);
  static const obs::Histogram trial_hist("eval.trial");
  static const obs::Counter trials_counter("eval.trials");
  trial_hist.observe(out.wall_s);
  trials_counter.add();
  return out;
}

std::vector<StageSummary> summarize_stages(
    const std::vector<TrialResult>& results) {
  struct Series {
    const char* name;
    double (*get)(const TrialResult&);
  };
  static constexpr Series kSeries[] = {
      {"synth", [](const TrialResult& r) { return r.stages.synth_s; }},
      {"reader", [](const TrialResult& r) { return r.stages.reader_s; }},
      {"track", [](const TrialResult& r) { return r.stages.track_s; }},
      {"classify", [](const TrialResult& r) { return r.stages.classify_s; }},
      {"trial_wall", [](const TrialResult& r) { return r.wall_s; }},
  };
  std::vector<StageSummary> out;
  out.reserve(std::size(kSeries));
  for (const Series& s : kSeries) {
    StageSummary sum;
    sum.name = s.name;
    sum.count = results.size();
    std::vector<double> values;
    values.reserve(results.size());
    for (const TrialResult& r : results) {
      const double v = s.get(r);
      values.push_back(v);
      sum.total_s += v;
    }
    if (!values.empty()) {
      sum.mean_ms = 1e3 * sum.total_s / static_cast<double>(values.size());
      sum.p95_ms = 1e3 * percentile(values, 95.0);
      sum.p50_ms = 1e3 * percentile(std::move(values), 50.0);
    }
    out.push_back(std::move(sum));
  }
  return out;
}

std::uint64_t trial_seed(std::uint64_t base, std::uint64_t index) {
  return splitmix64(base, index);
}

int default_thread_count() { return ThreadPool::default_thread_count(); }

std::vector<TrialResult> run_trials(const std::vector<TrialSpec>& specs,
                                    int n_threads) {
  if (n_threads <= 0) n_threads = default_thread_count();
  std::vector<TrialResult> results(specs.size());
  ThreadPool pool(n_threads);
  pool.parallel_for(specs.size(), [&](std::size_t i) {
    static const obs::SpanSite trial_site("eval.run_trial");
    static const obs::TraceName arg_trial("trial");
    obs::ScopedSpan span(trial_site);
    span.arg(arg_trial, static_cast<double>(i));
    results[i] = run_trial(specs[i].text, specs[i].cfg);
  });
  return results;
}

double letter_accuracy(const std::string& letters, int reps, TrialConfig cfg,
                       recognition::ConfusionMatrix* cm, int n_threads,
                       std::vector<TrialResult>* results_out) {
  // Counter-based seeding: trial k's seed depends only on (cfg.seed, k),
  // never on how many trials ran before it or on which thread it lands.
  std::vector<TrialSpec> specs;
  specs.reserve(letters.size() * static_cast<std::size_t>(std::max(reps, 0)));
  for (char c : letters) {
    for (int r = 0; r < reps; ++r) {
      TrialSpec spec{std::string(1, c), cfg};
      spec.cfg.seed = trial_seed(cfg.seed, specs.size());
      specs.push_back(std::move(spec));
    }
  }
  auto results = run_trials(specs, n_threads);
  // Aggregate strictly in trial-index order after the join so the
  // confusion matrix is bit-identical at every thread count.
  int correct = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].all_correct) ++correct;
    if (cm != nullptr && !results[i].recognized.empty()) {
      cm->record(specs[i].text[0], results[i].recognized[0]);
    }
  }
  const double acc =
      results.empty()
          ? 0.0
          : static_cast<double>(correct) / static_cast<double>(results.size());
  if (results_out != nullptr) *results_out = std::move(results);
  return acc;
}

double word_accuracy(std::size_t letters, int reps, TrialConfig cfg,
                     std::vector<TrialResult>* results_out, int n_threads) {
  std::vector<TrialSpec> specs;
  specs.reserve(10 * static_cast<std::size_t>(std::max(reps, 0)));
  for (std::size_t i = 0; i < 10; ++i) {
    for (int r = 0; r < reps; ++r) {
      TrialSpec spec{test_word(letters, i), cfg};
      spec.cfg.seed = trial_seed(cfg.seed, specs.size());
      specs.push_back(std::move(spec));
    }
  }
  auto results = run_trials(specs, n_threads);
  int correct = 0;
  for (const auto& res : results) {
    if (res.all_correct) ++correct;
  }
  const double acc =
      results.empty()
          ? 0.0
          : static_cast<double>(correct) / static_cast<double>(results.size());
  if (results_out != nullptr) *results_out = std::move(results);
  return acc;
}

std::string test_word(std::size_t letters, std::size_t index) {
  // Ten common dictionary words per length bucket (an O.E.D. stand-in).
  static const std::array<std::array<const char*, 10>, 4> kWords = {{
      {"AT", "BE", "DO", "GO", "IF", "IN", "IT", "ME", "ON", "UP"},
      {"ACT", "BIG", "CAR", "DOG", "EAT", "FUN", "HAT", "JOB", "MAP", "SUN"},
      {"BLUE", "CARD", "DESK", "FARM", "GOLD", "HAND", "LAMP", "MOON",
       "RAIN", "WIND"},
      {"APPLE", "BREAD", "CHAIR", "DREAM", "EARTH", "GREEN", "HOUSE",
       "LIGHT", "PLANT", "WATER"},
  }};
  if (letters < 2) letters = 2;
  if (letters > 5) letters = 5;
  return kWords[letters - 2][index % 10];
}

}  // namespace polardraw::eval
