#include "eval/harness.h"

#include <array>

#include "baselines/rfidraw.h"
#include "baselines/tagoram.h"
#include "core/polardraw.h"
#include "recognition/procrustes.h"

namespace polardraw::eval {

std::string to_string(System s) {
  switch (s) {
    case System::kPolarDraw: return "PolarDraw (2-antenna)";
    case System::kPolarDrawNoPol: return "PolarDraw w/o polarization";
    case System::kPolarDrawNoPolPhaseDir:
      return "PolarDraw w/o polarization (+phase dir)";
    case System::kTagoram2: return "Tagoram (2-antenna)";
    case System::kTagoram4: return "Tagoram (4-antenna)";
    case System::kRfIdraw4: return "RF-IDraw (4-antenna)";
  }
  return "unknown";
}

void apply_system_layout(TrialConfig& cfg) {
  switch (cfg.system) {
    case System::kPolarDraw:
    case System::kPolarDrawNoPol:
    case System::kPolarDrawNoPolPhaseDir:
      cfg.scene.layout = sim::RigLayout::kPolarDrawTwoAntenna;
      break;
    case System::kTagoram2:
      cfg.scene.layout = sim::RigLayout::kTagoramTwoAntenna;
      break;
    case System::kTagoram4:
      cfg.scene.layout = sim::RigLayout::kTagoramFourAntenna;
      break;
    case System::kRfIdraw4:
      cfg.scene.layout = sim::RigLayout::kRfIdrawFourAntenna;
      break;
  }
  cfg.algo.use_polarization = cfg.system != System::kPolarDrawNoPol &&
                              cfg.system != System::kPolarDrawNoPolPhaseDir;
  cfg.algo.use_phase_direction =
      cfg.system != System::kPolarDrawNoPol;
  cfg.algo.gamma_rad = cfg.scene.gamma;
  cfg.algo.board_width_m = cfg.scene.board_width_m;
  cfg.algo.board_height_m = cfg.scene.board_height_m;
}

TrialResult run_trial(const std::string& text, const TrialConfig& cfg_in) {
  TrialConfig cfg = cfg_in;
  apply_system_layout(cfg);
  cfg.scene.seed = cfg.seed;

  TrialResult out;
  out.text = text;

  // --- Synthesize the writing and run the reader -------------------------
  sim::Scene scene(cfg.scene);
  Rng rng(cfg.seed * 7919 + 13);
  const auto trace = handwriting::synthesize(text, cfg.synth, rng);
  const auto reports = scene.run(trace);
  out.report_count = reports.size();
  out.ground_truth = handwriting::flatten_strokes(trace.ground_truth);

  // --- Track ---------------------------------------------------------------
  const core::PhaseCalibration cal{scene.reader().port_phase_offsets()};
  switch (cfg.system) {
    case System::kPolarDraw:
    case System::kPolarDrawNoPol:
    case System::kPolarDrawNoPolPhaseDir: {
      const auto apos = scene.antenna_board_positions();
      // Antennas sit above the board; the tracker needs their board-plane
      // positions and the standoff that lifts them off the writing plane.
      core::PolarDraw tracker(cfg.algo, apos[0], apos[1], 0.12);
      out.trajectory = tracker.track(reports, &cal).trajectory;
      break;
    }
    case System::kTagoram2:
    case System::kTagoram4: {
      baselines::TagoramConfig tcfg;
      tcfg.grid.board_width_m = cfg.scene.board_width_m;
      tcfg.grid.board_height_m = cfg.scene.board_height_m;
      tcfg.grid.window_s = cfg.algo.window_s;
      tcfg.grid.vmax_mps = cfg.algo.vmax_mps;
      tcfg.grid.block_m = cfg.algo.block_m;
      tcfg.wavelength_m = cfg.algo.wavelength_m;
      baselines::TagoramTracker tracker(tcfg, scene.antennas());
      out.trajectory = tracker.track(reports);
      break;
    }
    case System::kRfIdraw4: {
      baselines::RfIdrawConfig rcfg;
      rcfg.grid.board_width_m = cfg.scene.board_width_m;
      rcfg.grid.board_height_m = cfg.scene.board_height_m;
      rcfg.grid.window_s = cfg.algo.window_s;
      rcfg.grid.vmax_mps = cfg.algo.vmax_mps;
      rcfg.grid.block_m = cfg.algo.block_m;
      rcfg.wavelength_m = cfg.algo.wavelength_m;
      baselines::RfIdrawTracker tracker(
          rcfg, scene.antennas(), {{0, 1}, {2, 3}},
          scene.reader().port_phase_offsets());
      out.trajectory = tracker.track(reports);
      break;
    }
  }

  // --- Score ----------------------------------------------------------------
  if (!out.trajectory.empty() && out.ground_truth.size() >= 2) {
    out.procrustes_m =
        recognition::procrustes_distance(out.ground_truth, out.trajectory);
  }
  static const recognition::LetterClassifier classifier;
  std::string letters;
  for (char c : text) {
    if (handwriting::has_glyph(c)) letters.push_back(c);
  }
  if (letters.size() <= 1) {
    out.recognized = std::string(
        1, classifier.classify(out.trajectory).letter);
    out.all_correct =
        !letters.empty() &&
        std::toupper(static_cast<unsigned char>(letters[0])) ==
            out.recognized[0];
  } else {
    // Words are judged with the length-group lexicon, mirroring the
    // paper's dictionary-backed recognizer over O.E.D. test words.
    std::vector<std::string> lexicon;
    for (std::size_t i = 0; i < 10; ++i) {
      lexicon.push_back(test_word(letters.size(), i));
    }
    out.recognized = classifier.classify_word_lexicon(out.trajectory, lexicon);
    std::string upper;
    for (char c : letters)
      upper.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    out.all_correct = out.recognized == upper;
  }
  return out;
}

double letter_accuracy(const std::string& letters, int reps, TrialConfig cfg,
                       recognition::ConfusionMatrix* cm) {
  int correct = 0, total = 0;
  for (char c : letters) {
    for (int r = 0; r < reps; ++r) {
      cfg.seed = cfg.seed * 6364136223846793005ull + 1442695040888963407ull;
      const auto res = run_trial(std::string(1, c), cfg);
      ++total;
      if (res.all_correct) ++correct;
      if (cm != nullptr && !res.recognized.empty()) {
        cm->record(c, res.recognized[0]);
      }
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

std::string test_word(std::size_t letters, std::size_t index) {
  // Ten common dictionary words per length bucket (an O.E.D. stand-in).
  static const std::array<std::array<const char*, 10>, 4> kWords = {{
      {"AT", "BE", "DO", "GO", "IF", "IN", "IT", "ME", "ON", "UP"},
      {"ACT", "BIG", "CAR", "DOG", "EAT", "FUN", "HAT", "JOB", "MAP", "SUN"},
      {"BLUE", "CARD", "DESK", "FARM", "GOLD", "HAND", "LAMP", "MOON",
       "RAIN", "WIND"},
      {"APPLE", "BREAD", "CHAIR", "DREAM", "EARTH", "GREEN", "HOUSE",
       "LIGHT", "PLANT", "WATER"},
  }};
  if (letters < 2) letters = 2;
  if (letters > 5) letters = 5;
  return kWords[letters - 2][index % 10];
}

}  // namespace polardraw::eval
