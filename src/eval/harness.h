// Experiment harness shared by the benchmark binaries, examples and
// integration tests: synthesizes writing, runs the chosen tracking system
// on the simulated RFID stream, and scores the result against ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/vec.h"
#include "core/config.h"
#include "handwriting/synthesizer.h"
#include "recognition/classifier.h"
#include "sim/scene.h"

namespace polardraw::eval {

/// Tracking system under test.
enum class System {
  kPolarDraw,        // 2 linear antennas, full algorithm
  kPolarDrawNoPol,   // Table 6 ablation: orientation model removed
  kPolarDrawNoPolPhaseDir,  // charitable ablation: phase-trend direction kept
  kTagoram2,         // Tagoram with 2 circular antennas
  kTagoram4,         // Tagoram with 4 circular antennas
  kRfIdraw4,         // RF-IDraw with 4 circular antennas (2 arrays)
};

std::string to_string(System s);

/// Everything a single writing trial needs.
struct TrialConfig {
  System system = System::kPolarDraw;
  sim::SceneConfig scene;
  handwriting::SynthesisConfig synth;
  core::PolarDrawConfig algo;
  std::uint64_t seed = 1;
};

/// Per-stage wall-clock breakdown of one trial, in seconds. The stages
/// partition run_trial: synthesis, scene simulation + RFID inventory,
/// tracking, then scoring + classification.
struct StageTimings {
  double synth_s = 0.0;
  double reader_s = 0.0;
  double track_s = 0.0;
  double classify_s = 0.0;
};

/// Outcome of one trial.
struct TrialResult {
  std::string text;
  std::vector<Vec2> trajectory;       // recovered
  std::vector<Vec2> ground_truth;     // ideal ink polyline
  double procrustes_m = 0.0;          // RMS Procrustes distance (meters)
  std::string recognized;             // classifier output (same length)
  bool all_correct = false;           // recognized == text
  std::size_t report_count = 0;       // raw reads delivered by the reader
  double wall_s = 0.0;                // wall-clock time of this trial
  StageTimings stages;                // wall_s broken down by stage
};

/// Percentile summary of one timing series across a trial batch.
struct StageSummary {
  std::string name;
  std::size_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double mean_ms = 0.0;
  double total_s = 0.0;
};

/// Summarizes a result batch's per-stage timings -- one entry per stage of
/// StageTimings plus "trial_wall" for TrialResult::wall_s -- for reporting
/// and the benchmark JSON export.
std::vector<StageSummary> summarize_stages(
    const std::vector<TrialResult>& results);

/// Runs one trial end to end. `text` may be a single letter or a word.
TrialResult run_trial(const std::string& text, const TrialConfig& cfg);

/// One entry of a trial batch: the text to write plus its full config
/// (including the trial's own seed).
struct TrialSpec {
  std::string text;
  TrialConfig cfg;
};

/// Seed for trial `index` of a sweep whose config carries `base`: a pure
/// function of (base, index), so trial k draws the same randomness whether
/// it runs first, last, alone, or on any thread. All sweep helpers below
/// derive their per-trial seeds through this.
std::uint64_t trial_seed(std::uint64_t base, std::uint64_t index);

/// Number of worker threads the batch helpers use when a caller passes
/// n_threads <= 0: the POLARDRAW_THREADS environment variable, or the
/// hardware concurrency when unset.
int default_thread_count();

/// Runs every spec (each already carrying its own seed) across
/// `n_threads` workers (<= 0: default_thread_count()). Results come back
/// indexed exactly like `specs`, so any aggregation the caller performs in
/// index order is bit-identical at every thread count.
std::vector<TrialResult> run_trials(const std::vector<TrialSpec>& specs,
                                    int n_threads = 0);

/// Convenience: letter-recognition accuracy over `reps` trials per letter
/// for the given letters. Trial seeds are counter-derived from cfg.seed
/// (trial_seed), and the confusion matrix is filled in trial-index order
/// after the parallel batch joins, so accuracy and `cm` are identical for
/// every `n_threads` (<= 0: default_thread_count()).
double letter_accuracy(const std::string& letters, int reps, TrialConfig cfg,
                       recognition::ConfusionMatrix* cm = nullptr,
                       int n_threads = 0,
                       std::vector<TrialResult>* results = nullptr);

/// Word-recognition accuracy over the 10-word lexicon of the given length
/// (test_word), `reps` trials per word, seeded and parallelized exactly
/// like letter_accuracy. `results` (when non-null) receives the per-trial
/// outcomes in trial-index order (word-major).
double word_accuracy(std::size_t letters, int reps, TrialConfig cfg,
                     std::vector<TrialResult>* results = nullptr,
                     int n_threads = 0);

/// Applies System-appropriate defaults to the scene layout.
void apply_system_layout(TrialConfig& cfg);

/// A deterministic pseudo-random word list (O.E.D. stand-in) of the given
/// letter count; index selects among 10 fixed words per length 2-5.
std::string test_word(std::size_t letters, std::size_t index);

}  // namespace polardraw::eval
