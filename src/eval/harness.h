// Experiment harness shared by the benchmark binaries, examples and
// integration tests: synthesizes writing, runs the chosen tracking system
// on the simulated RFID stream, and scores the result against ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/vec.h"
#include "core/config.h"
#include "handwriting/synthesizer.h"
#include "recognition/classifier.h"
#include "sim/scene.h"

namespace polardraw::eval {

/// Tracking system under test.
enum class System {
  kPolarDraw,        // 2 linear antennas, full algorithm
  kPolarDrawNoPol,   // Table 6 ablation: orientation model removed
  kPolarDrawNoPolPhaseDir,  // charitable ablation: phase-trend direction kept
  kTagoram2,         // Tagoram with 2 circular antennas
  kTagoram4,         // Tagoram with 4 circular antennas
  kRfIdraw4,         // RF-IDraw with 4 circular antennas (2 arrays)
};

std::string to_string(System s);

/// Everything a single writing trial needs.
struct TrialConfig {
  System system = System::kPolarDraw;
  sim::SceneConfig scene;
  handwriting::SynthesisConfig synth;
  core::PolarDrawConfig algo;
  std::uint64_t seed = 1;
};

/// Outcome of one trial.
struct TrialResult {
  std::string text;
  std::vector<Vec2> trajectory;       // recovered
  std::vector<Vec2> ground_truth;     // ideal ink polyline
  double procrustes_m = 0.0;          // RMS Procrustes distance (meters)
  std::string recognized;             // classifier output (same length)
  bool all_correct = false;           // recognized == text
  std::size_t report_count = 0;       // raw reads delivered by the reader
};

/// Runs one trial end to end. `text` may be a single letter or a word.
TrialResult run_trial(const std::string& text, const TrialConfig& cfg);

/// Convenience: letter-recognition accuracy over `reps` trials per letter
/// for the given letters, advancing the seed each rep. Also fills `cm`
/// when non-null.
double letter_accuracy(const std::string& letters, int reps, TrialConfig cfg,
                       recognition::ConfusionMatrix* cm = nullptr);

/// Applies System-appropriate defaults to the scene layout.
void apply_system_layout(TrialConfig& cfg);

/// A deterministic pseudo-random word list (O.E.D. stand-in) of the given
/// letter count; index selects among 10 fixed words per length 2-5.
std::string test_word(std::size_t letters, std::size_t index);

}  // namespace polardraw::eval
