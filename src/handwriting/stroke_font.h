// Vector stroke font for A-Z.
//
// Each glyph is a set of polyline strokes in a unit box (x right, y up,
// both in [0, 1]). The synthesizer scales glyphs to the requested writing
// size (the paper uses ~20 cm letters) and threads a kinematic pen model
// through the strokes. Glyph shapes are hand-designed for this project to
// resemble natural single- and multi-stroke handwriting; letters that share
// a writing style (e.g. L/I, V/U) are deliberately similar, since the
// paper's confusion matrix attributes most recognition errors to such pairs.
#pragma once

#include <string>
#include <vector>

#include "common/vec.h"

namespace polardraw::handwriting {

using Stroke = std::vector<Vec2>;

struct Glyph {
  char letter = '?';
  std::vector<Stroke> strokes;
  /// Horizontal advance to the next letter, in glyph units.
  double advance = 1.2;
};

/// Returns the glyph for an uppercase letter A-Z. Throws std::out_of_range
/// for unsupported characters.
const Glyph& glyph_for(char letter);

/// True when `letter` (after upper-casing) has a glyph.
bool has_glyph(char letter);

/// All 26 supported letters in order.
const std::string& alphabet();

/// Total polyline length of a glyph (glyph units), pen-down strokes only.
double glyph_ink_length(const Glyph& g);

/// Number of strokes (pen lifts + 1) in the glyph.
std::size_t glyph_stroke_count(const Glyph& g);

}  // namespace polardraw::handwriting
