#include "handwriting/stroke_font.h"

#include <array>
#include <cctype>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/angles.h"

namespace polardraw::handwriting {

namespace {

/// Samples a circular arc as a polyline. Angles in degrees, measured from
/// +X, counter-clockwise positive; `a0` to `a1` traversed in order.
Stroke arc(Vec2 center, double rx, double ry, double a0_deg, double a1_deg,
           int segments = 10) {
  Stroke s;
  s.reserve(static_cast<std::size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    const double a =
        deg2rad(a0_deg + (a1_deg - a0_deg) * static_cast<double>(i) / segments);
    s.push_back({center.x + rx * std::cos(a), center.y + ry * std::sin(a)});
  }
  return s;
}

/// Concatenates polylines into one continuous stroke (dropping duplicated
/// joints).
Stroke join(std::initializer_list<Stroke> parts) {
  Stroke out;
  for (const Stroke& p : parts) {
    for (const Vec2& v : p) {
      if (!out.empty() && out.back().dist(v) < 1e-9) continue;
      out.push_back(v);
    }
  }
  return out;
}

std::map<char, Glyph> build_font() {
  std::map<char, Glyph> f;
  auto add = [&](char c, std::vector<Stroke> strokes, double advance = 1.2) {
    f[c] = Glyph{c, std::move(strokes), advance};
  };

  // Glyphs live in the unit box, y up. Stroke order follows common
  // handwriting order (top-to-bottom, left-to-right strokes first).
  add('A', {{{0.0, 0.0}, {0.5, 1.0}, {1.0, 0.0}},
            {{0.2, 0.4}, {0.8, 0.4}}});
  add('B', {{{0.0, 0.0}, {0.0, 1.0}},
            join({{{0.0, 1.0}}, arc({0.0, 0.75}, 0.55, 0.25, 90, -90),
                  {{0.0, 0.5}}, arc({0.0, 0.25}, 0.65, 0.25, 90, -90),
                  {{0.0, 0.0}}})});
  add('C', {arc({0.55, 0.5}, 0.5, 0.5, 60, 300)});
  add('D', {{{0.0, 0.0}, {0.0, 1.0}},
            join({{{0.0, 1.0}}, arc({0.0, 0.5}, 0.85, 0.5, 90, -90),
                  {{0.0, 0.0}}})});
  add('E', {{{0.9, 1.0}, {0.0, 1.0}, {0.0, 0.0}, {0.9, 0.0}},
            {{0.0, 0.5}, {0.7, 0.5}}});
  add('F', {{{0.9, 1.0}, {0.0, 1.0}, {0.0, 0.0}},
            {{0.0, 0.5}, {0.7, 0.5}}});
  add('G', {join({arc({0.55, 0.5}, 0.5, 0.5, 60, 300),
                  {{1.05, 0.25}, {1.0, 0.45}, {0.6, 0.45}}})});
  add('H', {{{0.0, 1.0}, {0.0, 0.0}},
            {{1.0, 1.0}, {1.0, 0.0}},
            {{0.0, 0.5}, {1.0, 0.5}}});
  add('I', {{{0.5, 1.0}, {0.5, 0.0}}}, 0.7);
  add('J', {join({{{0.7, 1.0}, {0.7, 0.25}},
                  arc({0.45, 0.25}, 0.25, 0.25, 0, -180)})},
      1.0);
  add('K', {{{0.0, 1.0}, {0.0, 0.0}},
            {{0.9, 1.0}, {0.0, 0.45}, {0.9, 0.0}}});
  add('L', {{{0.0, 1.0}, {0.0, 0.0}, {0.85, 0.0}}}, 1.0);
  add('M', {{{0.0, 0.0}, {0.05, 1.0}, {0.5, 0.25}, {0.95, 1.0}, {1.0, 0.0}}},
      1.3);
  add('N', {{{0.0, 0.0}, {0.0, 1.0}, {1.0, 0.0}, {1.0, 1.0}}});
  add('O', {arc({0.5, 0.5}, 0.5, 0.5, 90, 450)});
  add('P', {{{0.0, 0.0}, {0.0, 1.0}},
            join({{{0.0, 1.0}}, arc({0.0, 0.72}, 0.6, 0.28, 90, -90),
                  {{0.0, 0.44}}})});
  add('Q', {arc({0.5, 0.5}, 0.5, 0.5, 90, 450),
            {{0.6, 0.3}, {1.05, -0.1}}});
  add('R', {{{0.0, 0.0}, {0.0, 1.0}},
            join({{{0.0, 1.0}}, arc({0.0, 0.72}, 0.6, 0.28, 90, -90),
                  {{0.0, 0.44}}}),
            {{0.25, 0.44}, {0.9, 0.0}}});
  add('S', {join({arc({0.5, 0.75}, 0.42, 0.25, 60, 270),
                  arc({0.5, 0.25}, 0.42, 0.25, 90, -120)})},
      1.1);
  add('T', {{{0.0, 1.0}, {1.0, 1.0}},
            {{0.5, 1.0}, {0.5, 0.0}}});
  add('U', {join({{{0.0, 1.0}, {0.0, 0.3}},
                  arc({0.5, 0.3}, 0.5, 0.3, 180, 360),
                  {{1.0, 1.0}}})});
  add('V', {{{0.0, 1.0}, {0.5, 0.0}, {1.0, 1.0}}});
  add('W', {{{0.0, 1.0}, {0.25, 0.0}, {0.5, 0.75}, {0.75, 0.0}, {1.0, 1.0}}},
      1.35);
  add('X', {{{0.0, 1.0}, {1.0, 0.0}},
            {{1.0, 1.0}, {0.0, 0.0}}});
  add('Y', {{{0.0, 1.0}, {0.5, 0.45}, {1.0, 1.0}},
            {{0.5, 0.45}, {0.5, 0.0}}});
  add('Z', {{{0.0, 1.0}, {1.0, 1.0}, {0.0, 0.0}, {1.0, 0.0}}});
  return f;
}

const std::map<char, Glyph>& font() {
  static const std::map<char, Glyph> f = build_font();
  return f;
}

}  // namespace

const Glyph& glyph_for(char letter) {
  const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(letter)));
  const auto it = font().find(upper);
  if (it == font().end()) {
    throw std::out_of_range(std::string("no glyph for character '") + letter + "'");
  }
  return it->second;
}

bool has_glyph(char letter) {
  const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(letter)));
  return font().count(upper) > 0;
}

const std::string& alphabet() {
  static const std::string a = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return a;
}

double glyph_ink_length(const Glyph& g) {
  double len = 0.0;
  for (const Stroke& s : g.strokes) {
    for (std::size_t i = 1; i < s.size(); ++i) len += s[i].dist(s[i - 1]);
  }
  return len;
}

std::size_t glyph_stroke_count(const Glyph& g) { return g.strokes.size(); }

}  // namespace polardraw::handwriting
