// Per-user writing styles for the cross-user experiment (paper Fig. 21).
//
// Four synthetic writers. User 2 reproduces the paper's instructed
// "stiff" style: the pen barely rotates during writing, starving
// PolarDraw's rotational direction estimator and exercising its graceful
// degradation through the translational path.
#pragma once

#include "handwriting/kinematics.h"
#include "handwriting/wrist.h"

namespace polardraw::handwriting {

struct UserStyle {
  int id = 1;
  const char* name = "user-1";
  WristStyle wrist;
  KinematicsConfig kinematics;
  /// Glyph shape distortion: random per-letter slant/scale wobble.
  double shape_wobble = 0.05;
};

/// Users 1-4. User 1 is a fluent writer; User 2 is "stiff" (tiny azimuth
/// swing); User 3 writes fast; User 4 writes slowly with large rotation.
UserStyle user_style(int id);

}  // namespace polardraw::handwriting
