// Pen-tip kinematics: turns glyph polylines into a time-sampled trajectory
// with a human-like speed profile (slowdowns at corners, brisk transit
// between strokes, dwell pauses at stroke starts).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "handwriting/stroke_font.h"

namespace polardraw::handwriting {

/// One time-sampled point of the pen-tip path (board plane).
struct PathSample {
  double t_s = 0.0;
  Vec2 pos;            // meters, board coordinates
  Vec2 velocity;       // m/s
  bool pen_down = true;  // false while hopping between strokes
};

struct KinematicsConfig {
  /// Cruise writing speed along a stroke, m/s. Typical board writing is
  /// 5-15 cm/s; the paper bounds the tracker at vmax = 0.2 m/s.
  double cruise_speed = 0.10;

  /// Speed while moving (pen lifted) between strokes, m/s.
  double transit_speed = 0.16;

  /// Fraction of cruise speed at a sharp corner (cosine-of-turn scaled).
  double corner_slowdown = 0.35;

  /// Dwell before starting each stroke, seconds.
  double stroke_start_pause_s = 0.08;

  /// Extra dwell at the very first stroke start (the writer settles the
  /// pen before writing); also gives trackers time to anchor.
  double initial_dwell_s = 0.6;

  /// Output sampling interval, seconds. 5 ms comfortably oversamples the
  /// reader's ~100 Hz interrogation so the reader can interpolate.
  double sample_dt = 0.005;

  /// Random speed wobble (fractional std-dev).
  double speed_jitter = 0.10;
};

/// Samples the pen path through a sequence of strokes already scaled and
/// placed in board coordinates (meters). `t0` is the start time.
std::vector<PathSample> sample_path(const std::vector<Stroke>& strokes_m,
                                    const KinematicsConfig& cfg, Rng& rng,
                                    double t0 = 0.0);

/// Scales and translates a glyph's strokes into board coordinates:
/// `origin` is the lower-left of the letter box, `size_m` the letter height.
std::vector<Stroke> place_glyph(const Glyph& glyph, Vec2 origin, double size_m);

}  // namespace polardraw::handwriting
