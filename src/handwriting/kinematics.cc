#include "handwriting/kinematics.h"

#include <algorithm>
#include <cmath>

namespace polardraw::handwriting {

namespace {

/// Local speed multiplier at vertex i of a stroke: 1 on straight runs,
/// down to `corner_slowdown` at hairpin turns.
double corner_factor(const Stroke& s, std::size_t i, double corner_slowdown) {
  if (i == 0 || i + 1 >= s.size()) return 1.0;
  const Vec2 in = (s[i] - s[i - 1]).normalized();
  const Vec2 out = (s[i + 1] - s[i]).normalized();
  const double c = std::clamp(in.dot(out), -1.0, 1.0);
  // c = 1 straight, c = -1 hairpin.
  const double t = (1.0 - c) / 2.0;  // 0..1 turn severity
  return 1.0 - (1.0 - corner_slowdown) * t;
}

/// Appends samples moving from `from` to `to` at `speed`, starting at *t.
void emit_segment(std::vector<PathSample>& out, Vec2 from, Vec2 to,
                  double speed, bool pen_down, const KinematicsConfig& cfg,
                  Rng& rng, double* t) {
  const double len = from.dist(to);
  if (len < 1e-9) return;
  const Vec2 dir = (to - from) / len;
  double traveled = 0.0;
  while (traveled < len) {
    const double jitter =
        std::max(0.2, 1.0 + rng.gaussian(0.0, cfg.speed_jitter));
    const double v = speed * jitter;
    const double step = v * cfg.sample_dt;
    traveled = std::min(traveled + step, len);
    *t += cfg.sample_dt;
    out.push_back({*t, from + dir * traveled, dir * v, pen_down});
  }
}

void emit_pause(std::vector<PathSample>& out, Vec2 at, double duration_s,
                bool pen_down, const KinematicsConfig& cfg, double* t) {
  const int n = static_cast<int>(std::ceil(duration_s / cfg.sample_dt));
  for (int i = 0; i < n; ++i) {
    *t += cfg.sample_dt;
    out.push_back({*t, at, Vec2{}, pen_down});
  }
}

}  // namespace

std::vector<PathSample> sample_path(const std::vector<Stroke>& strokes_m,
                                    const KinematicsConfig& cfg, Rng& rng,
                                    double t0) {
  std::vector<PathSample> out;
  double t = t0;
  Vec2 cursor;
  bool have_cursor = false;

  for (const Stroke& stroke : strokes_m) {
    if (stroke.size() < 2) continue;
    // Transit (pen up) from the previous stroke's end to this stroke's start.
    if (have_cursor) {
      emit_segment(out, cursor, stroke.front(), cfg.transit_speed,
                   /*pen_down=*/false, cfg, rng, &t);
    } else {
      out.push_back({t, stroke.front(), Vec2{}, false});
      emit_pause(out, stroke.front(), cfg.initial_dwell_s, true, cfg, &t);
    }
    emit_pause(out, stroke.front(), cfg.stroke_start_pause_s, true, cfg, &t);

    for (std::size_t i = 0; i + 1 < stroke.size(); ++i) {
      const double f0 = corner_factor(stroke, i, cfg.corner_slowdown);
      const double f1 = corner_factor(stroke, i + 1, cfg.corner_slowdown);
      const double speed = cfg.cruise_speed * (f0 + f1) / 2.0;
      emit_segment(out, stroke[i], stroke[i + 1], speed, /*pen_down=*/true,
                   cfg, rng, &t);
    }
    cursor = stroke.back();
    have_cursor = true;
  }
  return out;
}

std::vector<Stroke> place_glyph(const Glyph& glyph, Vec2 origin, double size_m) {
  std::vector<Stroke> placed;
  placed.reserve(glyph.strokes.size());
  for (const Stroke& s : glyph.strokes) {
    Stroke p;
    p.reserve(s.size());
    for (const Vec2& v : s) {
      p.push_back(origin + v * size_m);
    }
    placed.push_back(std::move(p));
  }
  return placed;
}

}  // namespace polardraw::handwriting
