#include "handwriting/synthesizer.h"

#include <cmath>

#include "common/angles.h"
#include "handwriting/stroke_font.h"

namespace polardraw::handwriting {

namespace {

/// Applies the per-letter shape wobble: a small random slant + scale.
std::vector<Stroke> wobble_strokes(const std::vector<Stroke>& strokes,
                                   Vec2 pivot, double wobble, Rng& rng) {
  const double slant = rng.gaussian(0.0, wobble * 0.5);   // radians
  const double scale = 1.0 + rng.gaussian(0.0, wobble);
  std::vector<Stroke> out;
  out.reserve(strokes.size());
  for (const Stroke& s : strokes) {
    Stroke w;
    w.reserve(s.size());
    for (const Vec2& v : s) {
      Vec2 d = (v - pivot) * scale;
      // Shear in x by the slant angle (italic-style wobble).
      d.x += d.y * std::tan(slant);
      w.push_back(pivot + d);
    }
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace

WritingTrace synthesize(const std::string& text, const SynthesisConfig& cfg,
                        Rng& rng) {
  WritingTrace trace;
  trace.text = text;

  // Lay out the glyph strokes left to right, centered under the rig.
  double advance_units = 0.0;
  for (char c : text) {
    if (has_glyph(c)) advance_units += glyph_for(c).advance;
  }
  double size = cfg.letter_size_m;
  Vec2 origin = cfg.origin;
  if (cfg.auto_center && advance_units > 0.0) {
    if (advance_units * size > cfg.max_width_m) {
      size = cfg.max_width_m / advance_units;  // shrink long words to fit
    }
    origin.x = cfg.board_center_x_m - advance_units * size / 2.0;
  }

  std::vector<Stroke> all_strokes;
  Vec2 cursor = origin;
  for (char c : text) {
    if (!has_glyph(c)) continue;
    const Glyph& g = glyph_for(c);
    auto placed = place_glyph(g, cursor, size);
    placed = wobble_strokes(placed, cursor, cfg.user.shape_wobble, rng);
    for (auto& s : placed) all_strokes.push_back(std::move(s));
    cursor.x += g.advance * size;
  }
  trace.ground_truth = all_strokes;
  if (all_strokes.empty()) return trace;

  // Time-sample the pen path and thread the wrist model through it.
  Rng path_rng = rng.fork();
  const auto path = sample_path(all_strokes, cfg.user.kinematics, path_rng);
  WristModel wrist(cfg.user.wrist, rng.fork());

  // In-air drift accumulators (random walk, slow).
  Rng air_rng = rng.fork();
  double z_drift = 0.0;
  Vec2 plane_drift;

  trace.samples.reserve(path.size());
  for (const PathSample& p : path) {
    TraceSample s;
    s.t_s = p.t_s;
    s.pen_down = p.pen_down;
    s.angles = wrist.step(p);

    Vec2 xy = p.pos;
    double z = 0.0;
    if (cfg.in_air) {
      const double dt = cfg.user.kinematics.sample_dt;
      z_drift += air_rng.gaussian(0.0, cfg.air_depth_wander_m * std::sqrt(dt));
      plane_drift.x +=
          air_rng.gaussian(0.0, cfg.air_plane_drift_m * std::sqrt(dt));
      plane_drift.y +=
          air_rng.gaussian(0.0, cfg.air_plane_drift_m * std::sqrt(dt));
      xy += plane_drift;
      z = z_drift;
    }
    s.pen_tip = Vec3{xy, z};
    s.tag_pos = s.pen_tip + em::pen_axis(s.angles) * cfg.tag_offset_m;
    trace.samples.push_back(s);
  }
  trace.duration_s =
      trace.samples.empty() ? 0.0 : trace.samples.back().t_s;
  return trace;
}

Stroke trace_ink_polyline(const WritingTrace& trace) {
  Stroke out;
  out.reserve(trace.samples.size());
  for (const TraceSample& s : trace.samples) {
    if (s.pen_down) out.push_back(s.pen_tip.xy());
  }
  return out;
}

Stroke flatten_strokes(const std::vector<Stroke>& strokes) {
  Stroke out;
  for (const Stroke& s : strokes) {
    out.insert(out.end(), s.begin(), s.end());
  }
  return out;
}

}  // namespace polardraw::handwriting
