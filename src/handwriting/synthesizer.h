// Writing-trace synthesizer: the top of the handwriting substrate.
//
// Produces a full ground-truth trace for a letter or word: pen-tip position
// in 3-D (board plane plus out-of-plane wobble for in-air writing) and pen
// orientation over time, plus the ideal ink polyline used as ground truth
// by the evaluation (standing in for the paper's photograph-and-edge-detect
// ground-truth pipeline).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "em/tag.h"
#include "handwriting/kinematics.h"
#include "handwriting/user.h"
#include "handwriting/wrist.h"

namespace polardraw::handwriting {

/// One fully-specified instant of the synthesized writing.
struct TraceSample {
  double t_s = 0.0;
  Vec3 pen_tip;          // meters, board coords (z = 0 on the whiteboard)
  Vec3 tag_pos;          // tag center: up the barrel from the tip
  em::PenAngles angles;  // pen orientation
  bool pen_down = true;
};

/// A complete synthesized writing session for one letter/word.
struct WritingTrace {
  std::string text;
  std::vector<TraceSample> samples;
  /// Ideal ink polyline (pen-down segments), the recognition ground truth.
  std::vector<Stroke> ground_truth;
  double duration_s = 0.0;
};

struct SynthesisConfig {
  UserStyle user = user_style(1);
  double letter_size_m = 0.20;  // the paper writes ~20 cm letters
  Vec2 origin{0.20, 0.15};      // lower-left of the first letter, meters

  /// Center the text horizontally in the writing block under the antenna
  /// rig (the paper's Fig. 17 writing block sits between the antennas),
  /// shrinking the letter size if a long word would not fit the board.
  bool auto_center = true;
  double board_center_x_m = 0.5;
  double max_width_m = 0.8;

  /// Distance from the pen tip to the tag center along the barrel,
  /// meters. The tag is taped partway up the pen, so wrist rotation
  /// physically swings the tag even when the tip barely moves -- the
  /// radios track the tag, not the tip.
  double tag_offset_m = 0.03;

  /// In-air mode: no board constrains the pen, so the trajectory wanders
  /// out of plane and the letter frame drifts (paper section 5.2.3).
  bool in_air = false;
  double air_depth_wander_m = 0.03;   // z drift std over a letter
  double air_plane_drift_m = 0.015;   // in-plane frame drift
};

/// Synthesizes one word (or single letter) of writing.
/// Only characters with glyphs are drawn; others are skipped.
WritingTrace synthesize(const std::string& text, const SynthesisConfig& cfg,
                        Rng& rng);

/// Flattens a trace's pen-down samples into one polyline (for plotting
/// and Procrustes comparison against recovered trajectories).
Stroke trace_ink_polyline(const WritingTrace& trace);

/// Flattens ground-truth strokes into a single polyline.
Stroke flatten_strokes(const std::vector<Stroke>& strokes);

}  // namespace polardraw::handwriting
