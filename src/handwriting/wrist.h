// Wrist / pen-orientation model.
//
// Implements the writing model of the paper's section 3.2 / Fig. 7 as
// rest-and-pivot kinematics. While a stroke is drawn the hand rests at a
// fixed pivot on the board and the pen pivots about it, so the pen's
// board-plane projection (angle alpha_r_rad) points from the pivot to the tip
// and the tip's motion is perpendicular to it -- clockwise rotation for
// rightward motion, counter-clockwise for leftward. When the pen
// over-extends (the projected angle or the reach leaves the comfortable
// range) the hand slides to restore posture, which momentarily makes the
// motion translation-dominant; pen-up transits reposition the hand under
// the next stroke. The azimuth alpha_a follows from alpha_r_rad by inverting
// the paper's Eq. 1:
//
//   cos(alpha_a) = tan(alpha_e_rad) / tan(alpha_r_rad)
//
// Horizontal stroke segments therefore sweep the azimuth across the
// Fig. 8 sectors (rotation-dominant windows) while vertical segments
// mostly stretch the reach (translation-dominant windows) -- exactly the
// split PolarDraw's motion classifier expects.
#pragma once

#include "common/rng.h"
#include "em/tag.h"
#include "handwriting/kinematics.h"

namespace polardraw::handwriting {

struct WristStyle {
  /// Mean pen elevation angle, radians (paper's alpha_e_rad, ~30 deg typical).
  double elevation_rad = 0.5235987755982988;  // 30 deg

  /// Slow elevation wander (std-dev, radians) around the mean.
  double elevation_wander_rad = 0.05;

  /// Hand-rest offset from the pen tip (meters, board coordinates):
  /// where the pivot lands when the hand repositions.
  Vec2 pivot_offset{0.005, -0.035};

  /// Comfortable half-range of the projected pen angle around vertical,
  /// radians. The hand slides once alpha_r_rad leaves
  /// [pi/2 - half_range, pi/2 + half_range]. A "stiff" writer (paper's
  /// User 2) has a small half-range: the arm moves, the pen barely
  /// rotates.
  double alpha_r_half_range_rad = 1.0;  // ~57 deg

  /// Reach (pivot-to-tip distance) limits, meters; the hand slides to
  /// stay inside them.
  double min_reach_m = 0.015;
  double max_reach_m = 0.11;

  /// Azimuth tremor (std-dev per sample, radians).
  double tremor_rad = 0.01;
};

/// Stateful generator: feed path samples in time order, get pen angles.
class WristModel {
 public:
  WristModel(WristStyle style, Rng rng);

  /// Advances the wrist state by one path sample and returns the pen
  /// orientation at that instant.
  em::PenAngles step(const PathSample& sample);

  void reset();

  const WristStyle& style() const { return style_; }
  const Vec2& pivot() const { return pivot_; }

  /// Inverse of the paper's Eq. 1: azimuth for a projected pen angle
  /// alpha_r_rad at elevation alpha_e_rad; clamped to the open interval
  /// (min_azimuth_rad, pi - min_azimuth_rad). Exposed for tests.
  static double azimuth_from_rotation(double alpha_r_rad, double alpha_e_rad,
                                      double min_azimuth_rad = 0.14);

 private:
  WristStyle style_;
  Rng rng_;
  Vec2 pivot_;
  bool started_ = false;
  double prev_t_ = 0.0;
  double elevation_offset_rad_ = 0.0;
  double azimuth_rad_ = 1.5707963267948966;
  double last_ar_ = 1.5707963267948966;
};

}  // namespace polardraw::handwriting
