#include "handwriting/wrist.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"

namespace polardraw::handwriting {

WristModel::WristModel(WristStyle style, Rng rng)
    : style_(style), rng_(rng) {}

void WristModel::reset() {
  started_ = false;
  elevation_offset_rad_ = 0.0;
  azimuth_rad_ = kPi / 2.0;
}

double WristModel::azimuth_from_rotation(double alpha_r_rad, double alpha_e_rad,
                                         double min_azimuth_rad) {
  // cos(alpha_a) = tan(alpha_e_rad) / tan(alpha_r_rad). Fold alpha_r_rad to [0, pi)
  // first (a projected line angle). tan(alpha_r_rad) -> 0 (pen projection
  // horizontal) saturates the azimuth at the clamp.
  const double ar = fold_pi(alpha_r_rad);
  const double t = std::tan(ar);
  double cos_a;
  if (std::fabs(t) < 1e-9) {
    cos_a = std::tan(alpha_e_rad) > 0.0 ? 1.0 : -1.0;
  } else {
    cos_a = std::tan(alpha_e_rad) / t;
  }
  const double limit = std::cos(min_azimuth_rad);
  cos_a = std::clamp(cos_a, -limit, limit);
  return std::acos(cos_a);
}

em::PenAngles WristModel::step(const PathSample& sample) {
  const double dt = started_ ? std::max(sample.t_s - prev_t_, 0.0) : 0.0;
  prev_t_ = sample.t_s;
  (void)dt;

  if (!started_ || !sample.pen_down) {
    // Hand repositions freely while the pen is lifted: the pivot glides
    // to its rest offset under the tip.
    pivot_ = sample.pos + style_.pivot_offset;
    started_ = true;
  } else {
    // Pen down: the hand rests -- the pivot stays put -- unless posture
    // leaves the comfortable envelope, in which case the hand slides just
    // enough to restore it (keeping the projected angle pinned at the
    // envelope edge while it does).
    const Vec2 radius = sample.pos - pivot_;
    const double len = radius.norm();
    double ar;
    if (len < style_.min_reach_m) {
      // The tip has come back over the hand; real writers keep the pen
      // angle and retreat the hand, so hold the previous angle while the
      // reach clamp below slides the pivot away.
      ar = last_ar_;
    } else {
      ar = radius.angle();  // (-pi, pi]
      if (ar < 0.0) ar += kPi;  // fold: projection is a line
    }
    const double lo = kPi / 2.0 - style_.alpha_r_half_range_rad;
    const double hi = kPi / 2.0 + style_.alpha_r_half_range_rad;
    const double ar_clamped = std::clamp(ar, lo, hi);
    const double len_clamped =
        std::clamp(len, style_.min_reach_m, style_.max_reach_m);
    if (ar_clamped != ar || len_clamped != len) {
      // Slide: keep the tip, move the pivot to the clamped posture.
      // The radius direction from pivot to tip is "up-ish" (the hand sits
      // below the tip), i.e. the unfolded angle equals the folded one.
      const Vec2 dir{std::cos(ar_clamped), std::sin(ar_clamped)};
      pivot_ = sample.pos - dir * len_clamped;
      ar = ar_clamped;
    }
    last_ar_ = ar;

    const double elevation = style_.elevation_rad + elevation_offset_rad_;
    azimuth_rad_ = azimuth_from_rotation(ar, elevation);
  }

  if (dt > 0.0) {
    elevation_offset_rad_ +=
        rng_.gaussian(0.0, style_.elevation_wander_rad * std::sqrt(dt));
    elevation_offset_rad_ = std::clamp(elevation_offset_rad_, -0.2, 0.2);
  }
  double az = azimuth_rad_ + rng_.gaussian(0.0, style_.tremor_rad);
  az = std::clamp(az, deg2rad(8.0), deg2rad(172.0));

  return em::PenAngles{style_.elevation_rad + elevation_offset_rad_, az};
}

}  // namespace polardraw::handwriting
