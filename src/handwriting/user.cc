#include "handwriting/user.h"

#include <stdexcept>

#include "common/angles.h"

namespace polardraw::handwriting {

UserStyle user_style(int id) {
  UserStyle u;
  u.id = id;
  switch (id) {
    case 1:
      u.name = "user-1 (fluent)";
      u.wrist.pivot_offset = {0.005, -0.035};
      u.wrist.alpha_r_half_range_rad = deg2rad(55.0);
      u.kinematics.cruise_speed = 0.10;
      u.shape_wobble = 0.05;
      break;
    case 2:
      u.name = "user-2 (stiff)";
      // The instructed unnatural style: the arm writes, the wrist barely
      // pivots -- a long stiff radius yields little azimuthal rotation.
      u.wrist.pivot_offset = {0.02, -0.20};
      u.wrist.alpha_r_half_range_rad = deg2rad(10.0);
      u.wrist.max_reach_m = 0.30;
      u.wrist.tremor_rad = 0.004;
      u.kinematics.cruise_speed = 0.08;
      u.shape_wobble = 0.04;
      break;
    case 3:
      u.name = "user-3 (fast)";
      u.wrist.pivot_offset = {0.008, -0.040};
      u.wrist.alpha_r_half_range_rad = deg2rad(50.0);
      u.kinematics.cruise_speed = 0.14;
      u.kinematics.speed_jitter = 0.14;
      u.shape_wobble = 0.08;
      break;
    case 4:
      u.name = "user-4 (deliberate)";
      u.wrist.pivot_offset = {0.004, -0.030};
      u.wrist.alpha_r_half_range_rad = deg2rad(58.0);
      u.kinematics.cruise_speed = 0.07;
      u.shape_wobble = 0.04;
      break;
    default:
      throw std::out_of_range("user_style: id must be 1..4");
  }
  return u;
}

}  // namespace polardraw::handwriting
