// Grid beam-search shared by the baseline trackers.
//
// Both Tagoram's differential augmented hologram and RF-IDraw's
// AoA-intersection tracking reduce, in discrete form, to the same engine:
// a grid of candidate blocks, a motion constraint (speed limit annulus)
// and a per-step scoring function. The trackers differ only in how they
// score a candidate move from the measured phases.
#pragma once

#include <functional>
#include <vector>

#include "common/vec.h"

namespace polardraw::baselines {

struct GridConfig {
  double board_width_m = 1.0;
  double board_height_m = 0.6;
  double block_m = 0.004;
  double vmax_mps = 0.2;
  double window_s = 0.05;
  std::size_t beam_width = 600;
};

/// Log-score of moving from `from` to `to` at step t. Return -inf-ish
/// values (e.g. -50) to veto a move.
using StepScorer =
    std::function<double(std::size_t t, const Vec2& from, const Vec2& to)>;

/// Viterbi beam decode of `steps` moves starting at `start`.
/// Returns steps + 1 positions (block centers).
std::vector<Vec2> grid_beam_decode(const GridConfig& cfg, const Vec2& start,
                                   std::size_t steps, const StepScorer& score);

}  // namespace polardraw::baselines
