#include "baselines/tagoram.h"

#include <cmath>

#include "baselines/windowing.h"
#include "common/angles.h"

namespace polardraw::baselines {

TagoramTracker::TagoramTracker(TagoramConfig cfg,
                               std::vector<em::ReaderAntenna> antennas)
    : cfg_(cfg), antennas_(std::move(antennas)) {}

std::vector<Vec2> TagoramTracker::track(
    const rfid::TagReportStream& reports) const {
  const int ports = static_cast<int>(antennas_.size());
  const auto windows =
      window_reports(reports, ports, cfg_.grid.window_s, nullptr);
  if (windows.size() < 2) return {};

  // Precompute per-window phase deltas (vs previous valid window per port).
  struct StepObs {
    std::vector<double> dtheta;  // per port; NaN if unavailable
  };
  std::vector<StepObs> steps;
  steps.reserve(windows.size() - 1);
  std::vector<double> prev_phase(static_cast<std::size_t>(ports), 0.0);
  std::vector<int> prev_window(static_cast<std::size_t>(ports), -1000);
  // Initialize from the first window.
  for (int a = 0; a < ports; ++a) {
    if (windows[0].phase_valid[static_cast<std::size_t>(a)]) {
      prev_phase[static_cast<std::size_t>(a)] =
          windows[0].phase_rad[static_cast<std::size_t>(a)];
      prev_window[static_cast<std::size_t>(a)] = 0;
    }
  }
  for (std::size_t w = 1; w < windows.size(); ++w) {
    StepObs so;
    so.dtheta.assign(static_cast<std::size_t>(ports),
                     std::numeric_limits<double>::quiet_NaN());
    for (int a = 0; a < ports; ++a) {
      const auto ai = static_cast<std::size_t>(a);
      // Only adjacent-window differentials: a delta spanning a read gap
      // covers several moves and cannot be scored against one transition.
      if (windows[w].phase_valid[ai] &&
          prev_window[ai] == static_cast<int>(w) - 1) {
        so.dtheta[ai] = windows[w].phase_rad[ai] - prev_phase[ai];
      }
      if (windows[w].phase_valid[ai]) {
        prev_phase[ai] = windows[w].phase_rad[ai];
        prev_window[ai] = static_cast<int>(w);
      }
    }
    steps.push_back(std::move(so));
  }

  // Start at the board center: with phase-only measurements the absolute
  // position is resolvable only up to hologram ambiguities, and the
  // evaluation metrics are translation-invariant.
  const Vec2 start{cfg_.grid.board_width_m / 2.0,
                   cfg_.grid.board_height_m / 2.0};

  const auto link_len = [this](const Vec2& p, const em::ReaderAntenna& ant) {
    const double dx = p.x - ant.position.x;
    const double dy = p.y - ant.position.y;
    const double dz = ant.position.z;
    return std::sqrt(dx * dx + dy * dy + dz * dz);
  };

  const auto scorer = [&](std::size_t t, const Vec2& from,
                          const Vec2& to) -> double {
    const StepObs& so = steps[t];
    double score = 0.0;
    int used = 0;
    for (std::size_t a = 0; a < so.dtheta.size(); ++a) {
      const double m = so.dtheta[a];
      if (std::isnan(m)) continue;
      const double expected =
          4.0 * kPi * (link_len(to, antennas_[a]) - link_len(from, antennas_[a])) /
          cfg_.wavelength_m;
      // Coherence of measured vs predicted phase change; differential, so
      // port offsets cancel.
      score += cfg_.coherence_weight * (std::cos(m - expected) - 1.0);
      ++used;
    }
    if (used == 0) return -0.1;  // mild penalty: drift only on blind steps
    return score;
  };

  return grid_beam_decode(cfg_.grid, start, steps.size(), scorer);
}

}  // namespace polardraw::baselines
