#include "baselines/windowing.h"

#include <cmath>
#include <map>

#include "common/angles.h"

namespace polardraw::baselines {

std::vector<MultiWindow> window_reports(
    const rfid::TagReportStream& reports, int num_ports, double window_s,
    const std::vector<double>* port_offsets) {
  std::vector<MultiWindow> out;
  if (reports.empty() || num_ports <= 0 || window_s <= 0.0) return out;

  const double t0 = reports.front().timestamp_s;
  struct Acc {
    std::vector<std::vector<double>> phase;
    std::vector<std::vector<double>> rss;
  };
  std::map<int, Acc> buckets;
  for (const auto& r : reports) {
    if (r.antenna_id < 0 || r.antenna_id >= num_ports) continue;
    const int w = static_cast<int>((r.timestamp_s - t0) / window_s);
    auto& acc = buckets[w];
    if (acc.phase.empty()) {
      acc.phase.resize(static_cast<std::size_t>(num_ports));
      acc.rss.resize(static_cast<std::size_t>(num_ports));
    }
    double phase = r.phase_rad;
    if (port_offsets != nullptr &&
        static_cast<std::size_t>(r.antenna_id) < port_offsets->size()) {
      phase = wrap_2pi(phase - (*port_offsets)[r.antenna_id]);
    }
    acc.phase[r.antenna_id].push_back(phase);
    acc.rss[r.antenna_id].push_back(r.rss_dbm);
  }
  if (buckets.empty()) return out;

  const int last = buckets.rbegin()->first;
  out.reserve(static_cast<std::size_t>(last) + 1);
  std::vector<PhaseUnwrapper> unwrappers(static_cast<std::size_t>(num_ports));
  for (int w = 0; w <= last; ++w) {
    MultiWindow win;
    win.t_s = t0 + (static_cast<double>(w) + 0.5) * window_s;
    win.phase_rad.assign(static_cast<std::size_t>(num_ports), 0.0);
    win.rss_dbm.assign(static_cast<std::size_t>(num_ports), -150.0);
    win.phase_valid.assign(static_cast<std::size_t>(num_ports), false);
    win.rss_valid.assign(static_cast<std::size_t>(num_ports), false);

    const auto it = buckets.find(w);
    if (it != buckets.end() && !it->second.phase.empty()) {
      for (int a = 0; a < num_ports; ++a) {
        const auto& ph = it->second.phase[static_cast<std::size_t>(a)];
        if (!ph.empty()) {
          double sx = 0.0, sy = 0.0;
          for (double p : ph) {
            sx += std::cos(p);
            sy += std::sin(p);
          }
          const double mean = wrap_2pi(std::atan2(sy, sx));
          win.phase_rad[static_cast<std::size_t>(a)] =
              unwrappers[static_cast<std::size_t>(a)].push(mean);
          win.phase_valid[static_cast<std::size_t>(a)] = true;
        }
        const auto& rs = it->second.rss[static_cast<std::size_t>(a)];
        if (!rs.empty()) {
          double s = 0.0;
          for (double v : rs) s += v;
          win.rss_dbm[static_cast<std::size_t>(a)] =
              s / static_cast<double>(rs.size());
          win.rss_valid[static_cast<std::size_t>(a)] = true;
        }
      }
    }
    out.push_back(std::move(win));
  }
  return out;
}

}  // namespace polardraw::baselines
