// RF-IDraw baseline (Wang et al., SIGCOMM 2014) -- angle-of-arrival
// intersection tracking, reimplemented from the published description.
//
// RF-IDraw places antenna pairs with unequal spacings: a widely-spaced
// ("coarse") pair gives a precise but ambiguous angle-of-arrival (many
// grating lobes), while a closely-spaced ("fine") pair gives an unambiguous
// but blunt one. The fine pair selects among the coarse pair's hypotheses,
// and two such arrays intersect their bearing hyperbolas to localize the
// tag. The paper compares against a 4-antenna build (two 2-element arrays),
// noting its accuracy is below the published 8-antenna system; we model
// that same 4-antenna build. Inter-antenna (spatial) phase comparisons need
// per-port calibration, which the constructor takes -- real deployments
// obtain it with a reference tag.
#pragma once

#include <vector>

#include "baselines/grid_search.h"
#include "common/vec.h"
#include "em/antenna.h"
#include "rfid/tag_report.h"

namespace polardraw::baselines {

struct RfIdrawConfig {
  GridConfig grid;
  double wavelength_m = 0.3276;
  /// Sharpness of the per-pair hyperbola coherence term. Kept moderate:
  /// the widely-spaced pairs have grating lobes, and over-weighting them
  /// lets a wrong lobe capture the track.
  double coherence_weight = 0.5;
  /// Weight of the temporal (per-port differential) term that stabilizes
  /// tracking between AoA updates.
  double temporal_weight = 2.0;
};

class RfIdrawTracker {
 public:
  /// `pairs` lists antenna index pairs forming the arrays, e.g.
  /// {{0,1},{2,3}} for two 2-element arrays.
  RfIdrawTracker(RfIdrawConfig cfg, std::vector<em::ReaderAntenna> antennas,
                 std::vector<std::pair<int, int>> pairs,
                 std::vector<double> port_phase_offsets);

  std::vector<Vec2> track(const rfid::TagReportStream& reports) const;

  const RfIdrawConfig& config() const { return cfg_; }

 private:
  RfIdrawConfig cfg_;
  std::vector<em::ReaderAntenna> antennas_;
  std::vector<std::pair<int, int>> pairs_;
  std::vector<double> offsets_;
};

}  // namespace polardraw::baselines
