#include "baselines/grid_search.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

namespace polardraw::baselines {

namespace {

struct Node {
  std::int32_t col;
  std::int32_t row;
  float log_prob;
  std::int32_t parent;
};

}  // namespace

std::vector<Vec2> grid_beam_decode(const GridConfig& cfg, const Vec2& start,
                                   std::size_t steps, const StepScorer& score) {
  const int cols = std::max(1, static_cast<int>(cfg.board_width_m / cfg.block_m));
  const int rows = std::max(1, static_cast<int>(cfg.board_height_m / cfg.block_m));
  const auto center = [&](int c, int r) {
    return Vec2{(static_cast<double>(c) + 0.5) * cfg.block_m,
                (static_cast<double>(r) + 0.5) * cfg.block_m};
  };

  const int c0 = std::clamp(static_cast<int>(start.x / cfg.block_m), 0, cols - 1);
  const int r0 = std::clamp(static_cast<int>(start.y / cfg.block_m), 0, rows - 1);

  const double upper = cfg.vmax_mps * cfg.window_s;
  const int reach = std::max(1, static_cast<int>(std::ceil(upper / cfg.block_m)));

  std::vector<std::vector<Node>> beams;
  beams.reserve(steps + 1);
  beams.push_back({Node{c0, r0, 0.0f, -1}});

  std::unordered_map<std::int64_t, std::size_t> best_idx;
  for (std::size_t t = 0; t < steps; ++t) {
    const auto& prev = beams.back();
    std::vector<Node> next;
    next.reserve(prev.size() * 9);
    best_idx.clear();

    for (std::int32_t pi = 0; pi < static_cast<std::int32_t>(prev.size()); ++pi) {
      const Node& p = prev[pi];
      const Vec2 from = center(p.col, p.row);
      for (int dr = -reach; dr <= reach; ++dr) {
        const int nr = p.row + dr;
        if (nr < 0 || nr >= rows) continue;
        for (int dc = -reach; dc <= reach; ++dc) {
          const int nc = p.col + dc;
          if (nc < 0 || nc >= cols) continue;
          const Vec2 to = center(nc, nr);
          if (from.dist(to) > upper + 0.5 * cfg.block_m) continue;
          const double s = score(t, from, to);
          const float lp = p.log_prob + static_cast<float>(s);
          const std::int64_t key = static_cast<std::int64_t>(nr) * cols + nc;
          const auto it = best_idx.find(key);
          if (it == best_idx.end()) {
            best_idx.emplace(key, next.size());
            next.push_back({nc, nr, lp, pi});
          } else if (lp > next[it->second].log_prob) {
            next[it->second] = {nc, nr, lp, pi};
          }
        }
      }
    }
    if (next.empty()) {
      next.push_back({prev.front().col, prev.front().row,
                      prev.front().log_prob, 0});
    }
    if (next.size() > cfg.beam_width) {
      std::nth_element(next.begin(), next.begin() + cfg.beam_width, next.end(),
                       [](const Node& a, const Node& b) {
                         return a.log_prob > b.log_prob;
                       });
      next.resize(cfg.beam_width);
    }
    beams.push_back(std::move(next));
  }

  // Backtrace.
  const auto& last = beams.back();
  std::int32_t idx = 0;
  for (std::int32_t i = 1; i < static_cast<std::int32_t>(last.size()); ++i) {
    if (last[i].log_prob > last[idx].log_prob) idx = i;
  }
  std::vector<Vec2> reversed;
  reversed.reserve(beams.size());
  for (std::size_t step = beams.size(); step-- > 0;) {
    const Node& n = beams[step][static_cast<std::size_t>(idx)];
    reversed.push_back(center(n.col, n.row));
    idx = std::max(n.parent, 0);
  }
  return {reversed.rbegin(), reversed.rend()};
}

}  // namespace polardraw::baselines
