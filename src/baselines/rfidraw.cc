#include "baselines/rfidraw.h"

#include <cmath>
#include <limits>

#include "baselines/windowing.h"
#include "common/angles.h"

namespace polardraw::baselines {

RfIdrawTracker::RfIdrawTracker(RfIdrawConfig cfg,
                               std::vector<em::ReaderAntenna> antennas,
                               std::vector<std::pair<int, int>> pairs,
                               std::vector<double> port_phase_offsets)
    : cfg_(cfg),
      antennas_(std::move(antennas)),
      pairs_(std::move(pairs)),
      offsets_(std::move(port_phase_offsets)) {}

std::vector<Vec2> RfIdrawTracker::track(
    const rfid::TagReportStream& reports) const {
  const int ports = static_cast<int>(antennas_.size());
  const auto windows =
      window_reports(reports, ports, cfg_.grid.window_s, &offsets_);
  if (windows.size() < 2) return {};

  const auto link_len = [this](const Vec2& p, int a) {
    const auto& ant = antennas_[static_cast<std::size_t>(a)];
    const double dx = p.x - ant.position.x;
    const double dy = p.y - ant.position.y;
    const double dz = ant.position.z;
    return std::sqrt(dx * dx + dy * dy + dz * dz);
  };

  // Per-step observations: spatial pair differences (calibrated, wrapped)
  // and per-port temporal deltas.
  struct StepObs {
    std::vector<double> pair_diff;   // per pair; NaN if unavailable
    std::vector<double> dtheta;      // per port; NaN if unavailable
  };
  std::vector<StepObs> steps;
  steps.reserve(windows.size() - 1);
  std::vector<double> prev_phase(static_cast<std::size_t>(ports), 0.0);
  std::vector<int> prev_window(static_cast<std::size_t>(ports), -1000);
  for (int a = 0; a < ports; ++a) {
    const auto ai = static_cast<std::size_t>(a);
    if (windows[0].phase_valid[ai]) {
      prev_phase[ai] = windows[0].phase_rad[ai];
      prev_window[ai] = 0;
    }
  }
  for (std::size_t w = 1; w < windows.size(); ++w) {
    StepObs so;
    so.pair_diff.assign(pairs_.size(),
                        std::numeric_limits<double>::quiet_NaN());
    so.dtheta.assign(static_cast<std::size_t>(ports),
                     std::numeric_limits<double>::quiet_NaN());
    for (std::size_t pi = 0; pi < pairs_.size(); ++pi) {
      const auto [i, j] = pairs_[pi];
      const auto ii = static_cast<std::size_t>(i);
      const auto jj = static_cast<std::size_t>(j);
      if (windows[w].phase_valid[ii] && windows[w].phase_valid[jj]) {
        so.pair_diff[pi] =
            windows[w].phase_rad[jj] - windows[w].phase_rad[ii];
      }
    }
    for (int a = 0; a < ports; ++a) {
      const auto ai = static_cast<std::size_t>(a);
      // Only adjacent-window differentials: a delta spanning a read gap
      // covers several moves and cannot be scored against one transition.
      if (windows[w].phase_valid[ai] &&
          prev_window[ai] == static_cast<int>(w) - 1) {
        so.dtheta[ai] = windows[w].phase_rad[ai] - prev_phase[ai];
      }
      if (windows[w].phase_valid[ai]) {
        prev_phase[ai] = windows[w].phase_rad[ai];
        prev_window[ai] = static_cast<int>(w);
      }
    }
    steps.push_back(std::move(so));
  }

  // Initial fix: grid argmax of the spatial (AoA) coherence on the first
  // window with all pairs observed -- RF-IDraw localizes before tracking.
  Vec2 start{cfg_.grid.board_width_m / 2.0, cfg_.grid.board_height_m / 2.0};
  for (const MultiWindow& w : windows) {
    bool pairs_ok = true;
    for (const auto& [i, j] : pairs_) {
      if (!w.phase_valid[static_cast<std::size_t>(i)] ||
          !w.phase_valid[static_cast<std::size_t>(j)]) {
        pairs_ok = false;
        break;
      }
    }
    if (!pairs_ok) continue;
    double best = -1e18;
    const double step = cfg_.grid.block_m * 2.0;  // coarse scan suffices
    for (double y = step / 2.0; y < cfg_.grid.board_height_m; y += step) {
      for (double x = step / 2.0; x < cfg_.grid.board_width_m; x += step) {
        const Vec2 p{x, y};
        double s = 0.0;
        for (const auto& [i, j] : pairs_) {
          const double meas = w.phase_rad[static_cast<std::size_t>(j)] -
                              w.phase_rad[static_cast<std::size_t>(i)];
          const double expected =
              4.0 * kPi * (link_len(p, j) - link_len(p, i)) / cfg_.wavelength_m;
          s += std::cos(meas - expected);
        }
        if (s > best) {
          best = s;
          start = p;
        }
      }
    }
    break;
  }

  const auto scorer = [&](std::size_t t, const Vec2& from,
                          const Vec2& to) -> double {
    const StepObs& so = steps[t];
    double score = 0.0;
    int used = 0;
    // AoA / hyperbola term: the candidate must lie where each array's
    // spatial phase difference matches. The cosine handles the 2k*pi
    // ambiguity exactly the way grating lobes do; the fine/coarse pairing
    // plus temporal continuity selects among lobes.
    for (std::size_t pi = 0; pi < so.pair_diff.size(); ++pi) {
      const double m = so.pair_diff[pi];
      if (std::isnan(m)) continue;
      const auto [i, j] = pairs_[pi];
      const double expected =
          4.0 * kPi * (link_len(to, j) - link_len(to, i)) / cfg_.wavelength_m;
      score += cfg_.coherence_weight * (std::cos(m - expected) - 1.0);
      ++used;
    }
    // Temporal stabilizer: per-port differential coherence (as in any
    // phase tracker; RF-IDraw's virtual-touch-screen demo also tracks
    // continuously rather than re-localizing from scratch).
    for (std::size_t a = 0; a < so.dtheta.size(); ++a) {
      const double m = so.dtheta[a];
      if (std::isnan(m)) continue;
      const double expected =
          4.0 * kPi *
          (link_len(to, static_cast<int>(a)) -
           link_len(from, static_cast<int>(a))) /
          cfg_.wavelength_m;
      score += cfg_.temporal_weight * (std::cos(m - expected) - 1.0);
      ++used;
    }
    if (used == 0) return -0.1;
    return score;
  };

  return grid_beam_decode(cfg_.grid, start, steps.size(), scorer);
}

}  // namespace polardraw::baselines
