// N-antenna window aggregation shared by the baseline trackers.
//
// Unlike PolarDraw's two-antenna preprocessing (core/preprocess.h), the
// baselines run with 2-8 antenna ports, so this module aggregates reports
// into fixed windows for an arbitrary port count and unwraps each port's
// phase across windows.
#pragma once

#include <vector>

#include "rfid/tag_report.h"

namespace polardraw::baselines {

struct MultiWindow {
  double t_s = 0.0;
  std::vector<double> phase_rad;   // unwrapped, per port
  std::vector<double> rss_dbm;     // per port
  std::vector<bool> phase_valid;   // per port
  std::vector<bool> rss_valid;     // per port

  bool all_phase_valid() const {
    for (bool v : phase_valid)
      if (!v) return false;
    return !phase_valid.empty();
  }
};

/// Aggregates a report stream into windows of `window_s` seconds across
/// `num_ports` antenna ports. Optional per-port phase offsets (calibration)
/// are subtracted before unwrapping.
std::vector<MultiWindow> window_reports(
    const rfid::TagReportStream& reports, int num_ports, double window_s,
    const std::vector<double>* port_offsets = nullptr);

}  // namespace polardraw::baselines
