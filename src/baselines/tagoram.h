// Tagoram baseline (Yang et al., MobiCom 2014) -- differential augmented
// hologram (DAH) tracking, reimplemented from the published description.
//
// Tagoram localizes a moving tag by treating the board as a hologram: each
// candidate position predicts a phase at every antenna; the likelihood of
// a position is how coherently the measured phases agree with the
// predictions. The *differential* form scores position pairs using phase
// changes between consecutive windows, which cancels per-port phase
// offsets and the tag's unknown reflection phase. We decode the most
// likely block sequence with the same Viterbi beam engine PolarDraw uses,
// so the comparison isolates the measurement model (4 circular antennas,
// phase only) rather than the search machinery.
#pragma once

#include <vector>

#include "baselines/grid_search.h"
#include "common/vec.h"
#include "em/antenna.h"
#include "rfid/tag_report.h"

namespace polardraw::baselines {

struct TagoramConfig {
  GridConfig grid;
  double wavelength_m = 0.3276;
  /// Sharpness of the per-antenna coherence term.
  double coherence_weight = 2.0;
};

class TagoramTracker {
 public:
  TagoramTracker(TagoramConfig cfg, std::vector<em::ReaderAntenna> antennas);

  /// Recovers the trajectory from a raw report stream.
  std::vector<Vec2> track(const rfid::TagReportStream& reports) const;

  const TagoramConfig& config() const { return cfg_; }

 private:
  TagoramConfig cfg_;
  std::vector<em::ReaderAntenna> antennas_;
};

}  // namespace polardraw::baselines
