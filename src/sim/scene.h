// Scene assembly: whiteboard geometry, antenna rig, channel and reader,
// wired to a handwriting trace. This is the experiment harness' single
// entry point for producing the RFID report stream PolarDraw consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/multipath.h"
#include "common/rng.h"
#include "em/antenna.h"
#include "handwriting/synthesizer.h"
#include "rfid/reader.h"
#include "rfid/tag_report.h"

namespace polardraw::sim {

/// Antenna rig layouts used across the paper's experiments.
enum class RigLayout {
  kPolarDrawTwoAntenna,   // 2 linear antennas at +/- gamma (paper Fig. 4)
  kTagoramFourAntenna,    // 4 circular antennas around the writing block
  kTagoramTwoAntenna,     // Tagoram limited to 2 antennas (equal hardware)
  kRfIdrawFourAntenna,    // 2 x 2 non-uniform AoA arrays (Fig. 17)
};

struct SceneConfig {
  /// Board writing area, meters (the paper's plots span ~1.0 x 0.6 m).
  double board_width_m = 1.0;
  double board_height_m = 0.6;

  /// Antenna standoff from the board plane, meters (tag-to-reader distance
  /// knob of Table 5 / Fig. 22).
  double antenna_standoff_m = 1.0;

  /// Inter-antenna polarization half-angle gamma (radians; Table 8 knob).
  double gamma_rad = 0.2617993877991494;  // 15 deg, the paper's default

  /// Horizontal spacing between the two PolarDraw antennas, meters.
  double antenna_spacing_m = 0.565;  // 56 cm, per Fig. 17's rig

  RigLayout layout = RigLayout::kPolarDrawTwoAntenna;

  rfid::ReaderConfig reader;

  /// Office clutter scatterer count (0 = anechoic).
  int clutter_count = 5;

  std::uint64_t seed = 1;
};

/// A ready-to-run scene.
class Scene {
 public:
  explicit Scene(const SceneConfig& cfg);

  /// Runs the reader inventory over the full duration of `trace`,
  /// returning the raw tag report stream.
  rfid::TagReportStream run(const handwriting::WritingTrace& trace);

  rfid::Reader& reader() { return *reader_; }
  const rfid::Reader& reader() const { return *reader_; }
  const SceneConfig& config() const { return cfg_; }
  const std::vector<em::ReaderAntenna>& antennas() const {
    return reader_->antennas();
  }
  /// Board-plane positions (x, y) of the antennas, used by trackers.
  std::vector<Vec2> antenna_board_positions() const;

  /// Adds a scatterer (e.g. a bystander) to the channel.
  void add_scatterer(channel::Scatterer s);

 private:
  SceneConfig cfg_;
  std::unique_ptr<rfid::Reader> reader_;
};

/// Builds the antenna set for a rig layout. Exposed for tests.
std::vector<em::ReaderAntenna> build_rig(const SceneConfig& cfg);

/// Interpolates the trace at time t (clamping at the ends) and returns the
/// corresponding tag (position + dipole orientation).
em::Tag tag_at_time(const handwriting::WritingTrace& trace, double t_s);

}  // namespace polardraw::sim
