#include "sim/scene.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"

namespace polardraw::sim {

std::vector<em::ReaderAntenna> build_rig(const SceneConfig& cfg) {
  // Geometry (matching the paper's Figs. 4/6/8): the board is the X-Y
  // plane; antennas hang above the writing area looking DOWN (-Y
  // boresight). The plane transverse to that line of sight is X-Z -- the
  // same plane the pen azimuth alpha_a sweeps -- so a linear antenna's
  // polarization axis lives in X-Z at an angle +/- gamma from the Z axis
  // ("their angles with the Z-axis are equal", section 3.3.1).
  //
  // "Tag-to-reader distance" (Table 5's knob) is the vertical standoff
  // from the center of the writing area to the antenna line.
  std::vector<em::ReaderAntenna> rig;
  const double cx = cfg.board_width_m / 2.0;
  const double write_cy = 0.25;  // vertical center of the writing block
  const double top = write_cy + cfg.antenna_standoff_m;
  const double z = 0.12;  // slight out-of-board offset of the mounts
  const double half = cfg.antenna_spacing_m / 2.0;

  const auto face_down = [](em::ReaderAntenna a) {
    a.boresight = Vec3{0.0, -1.0, 0.0};
    return a;
  };
  // Linear antenna looking down with polarization axis in the X-Z plane
  // at `angle_from_x_rad` (pi/2 +/- gamma puts it gamma off the Z axis).
  const auto linear_down = [&](const Vec3& pos, double angle_from_x_rad) {
    em::ReaderAntenna a = em::make_linear_antenna(pos, angle_from_x_rad);
    a.boresight = Vec3{0.0, -1.0, 0.0};
    a.polarization_axis =
        Vec3{std::cos(angle_from_x_rad), 0.0, std::sin(angle_from_x_rad)};
    return a;
  };

  switch (cfg.layout) {
    case RigLayout::kPolarDrawTwoAntenna: {
      // Antenna 0 ("antenna 1" of Fig. 8c) at pi/2 + gamma from +X,
      // antenna 1 at pi/2 - gamma.
      rig.push_back(linear_down(Vec3{cx - half, top, z}, kPi / 2.0 + cfg.gamma_rad));
      rig.push_back(linear_down(Vec3{cx + half, top, z}, kPi / 2.0 - cfg.gamma_rad));
      break;
    }
    case RigLayout::kTagoramTwoAntenna: {
      rig.push_back(face_down(em::make_circular_antenna(Vec3{cx - half, top, z})));
      rig.push_back(face_down(em::make_circular_antenna(Vec3{cx + half, top, z})));
      break;
    }
    case RigLayout::kTagoramFourAntenna: {
      // Four circular antennas boxing the writing block (Fig. 17 left):
      // corners of an 86.5 x 56 cm rectangle centered on the block,
      // standing off the board plane and facing it. Section 7 notes
      // Tagoram "requires a relatively close antenna spacing, so that the
      // tag is within the coverage area of all four antennas".
      const double hx = 0.865 / 2.0, hy = 0.56 / 2.0;
      const double standoff = cfg.antenna_standoff_m;
      const auto face_board = [&](double x, double y) {
        em::ReaderAntenna a =
            em::make_circular_antenna(Vec3{x, y, standoff});
        a.boresight = Vec3{0.0, 0.0, -1.0};
        return a;
      };
      rig.push_back(face_board(cx - hx, write_cy + hy));
      rig.push_back(face_board(cx + hx, write_cy + hy));
      rig.push_back(face_board(cx - hx, write_cy - hy));
      rig.push_back(face_board(cx + hx, write_cy - hy));
      break;
    }
    case RigLayout::kRfIdrawFourAntenna: {
      // Two 2-element arrays (Fig. 17 right): each array a closely-spaced
      // pair, the arrays 86.5 cm apart, one tilted -- here one horizontal
      // above the block and one vertical beside it, standing off the
      // board and facing it, giving AoA diversity in both axes.
      const double fine = 0.17;  // ~lambda/2 within an array
      const double standoff = cfg.antenna_standoff_m;
      const auto face_board = [&](double x, double y) {
        em::ReaderAntenna a =
            em::make_circular_antenna(Vec3{x, y, standoff});
        a.boresight = Vec3{0.0, 0.0, -1.0};
        return a;
      };
      rig.push_back(face_board(cx - 0.865 / 2.0, write_cy + 0.30));
      rig.push_back(face_board(cx - 0.865 / 2.0 + fine, write_cy + 0.30));
      rig.push_back(face_board(cx + 0.865 / 2.0, write_cy + 0.15));
      rig.push_back(face_board(cx + 0.865 / 2.0, write_cy + 0.15 - fine));
      break;
    }
  }
  return rig;
}

Scene::Scene(const SceneConfig& cfg) : cfg_(cfg) {
  Rng rng(cfg.seed);
  auto channel = channel::make_office_channel(cfg.clutter_count);
  reader_ = std::make_unique<rfid::Reader>(cfg.reader, build_rig(cfg),
                                           std::move(channel), rng.fork());
}

void Scene::add_scatterer(channel::Scatterer s) {
  reader_->channel().add(std::move(s));
}

std::vector<Vec2> Scene::antenna_board_positions() const {
  std::vector<Vec2> out;
  out.reserve(antennas().size());
  for (const auto& a : antennas()) out.push_back(a.position.xy());
  return out;
}

em::Tag tag_at_time(const handwriting::WritingTrace& trace, double t_s) {
  const auto& samples = trace.samples;
  if (samples.empty()) return em::Tag{};

  // Binary search for the sample interval containing t_s.
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), t_s,
      [](const handwriting::TraceSample& s, double t) { return s.t_s < t; });

  handwriting::TraceSample interp;
  if (it == samples.begin()) {
    interp = samples.front();
  } else if (it == samples.end()) {
    interp = samples.back();
  } else {
    const auto& hi = *it;
    const auto& lo = *(it - 1);
    const double span = hi.t_s - lo.t_s;
    const double f = span > 0.0 ? (t_s - lo.t_s) / span : 0.0;
    interp.t_s = t_s;
    interp.tag_pos = lo.tag_pos + (hi.tag_pos - lo.tag_pos) * f;
    interp.angles.azimuth_rad =
        lo.angles.azimuth_rad + angle_diff(hi.angles.azimuth_rad, lo.angles.azimuth_rad) * f;
    interp.angles.elevation_rad =
        lo.angles.elevation_rad +
        angle_diff(hi.angles.elevation_rad, lo.angles.elevation_rad) * f;
    interp.pen_down = lo.pen_down;
  }
  return em::make_pen_tag(interp.tag_pos, interp.angles);
}

rfid::TagReportStream Scene::run(const handwriting::WritingTrace& trace) {
  if (trace.samples.empty()) return {};
  const auto tag_fn = [&trace](double t) { return tag_at_time(trace, t); };
  reader_->select_modulation(tag_fn);
  return reader_->inventory(tag_fn, trace.samples.front().t_s,
                            trace.samples.back().t_s);
}

}  // namespace polardraw::sim
