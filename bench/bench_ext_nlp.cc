// Extension: the paper's NLP conjecture, measured.
//
// Sections 5.2.1 and 7 claim that "by applying natural language
// processing techniques, we can further increase recognition accuracy".
// This bench quantifies it: words are recognized per-letter (segmented
// classification, no lexicon), then post-processed by (a) a letter-bigram
// noisy-channel decode over the classifier's top-2 hypotheses and (b)
// dictionary snapping -- and compared against the raw per-letter output.
#include "bench_common.h"

#include "recognition/classifier.h"
#include "recognition/language_model.h"
#include "recognition/procrustes.h"

using namespace polardraw;

namespace {

struct Outcome {
  int raw_ok = 0;
  int bigram_ok = 0;
  int snapped_ok = 0;
  int total = 0;
  int raw_letters_ok = 0;
  int snapped_letters_ok = 0;
  int letters_total = 0;
};

Outcome run(std::size_t len, int reps) {
  Outcome out;
  static const recognition::LetterClassifier classifier;
  static const recognition::WordCorrector corrector{
      recognition::BigramModel{}, 1.5};
  // The trials dominate the cost: run them as one parallel batch, then
  // post-process serially in trial-index order.
  std::vector<eval::TrialSpec> specs;
  for (std::size_t i = 0; i < 10; ++i) {
    for (int r = 0; r < reps; ++r) {
      eval::TrialSpec spec{eval::test_word(len, i),
                           bench::default_trial(eval::System::kPolarDraw,
                                                5200 + 71 * len)};
      spec.cfg.seed = eval::trial_seed(spec.cfg.seed, specs.size());
      specs.push_back(std::move(spec));
    }
  }
  const auto results = eval::run_trials(specs, bench::n_threads());
  for (std::size_t n = 0; n < results.size(); ++n) {
    const std::string& word = specs[n].text;
    const auto& res = results[n];

    // Per-letter segmentation with the classifier's actual best and
    // runner-up hypotheses per position, plus a flat tail so the bigram
    // prior can flip weakly supported letters.
    const auto detail =
        classifier.classify_word_detailed(res.trajectory, word.size());
    std::string raw;
    std::vector<std::vector<recognition::LetterHypothesis>> positions;
    for (const auto& c : detail) {
      raw.push_back(c.letter);
      std::vector<recognition::LetterHypothesis> hyps{
          {c.letter, 0.0},
          {c.second, 10.0 * (c.second_score - c.score)}};
      for (char alt : handwriting::alphabet()) {
        if (alt != c.letter && alt != c.second) hyps.push_back({alt, 3.0});
      }
      positions.push_back(std::move(hyps));
    }
    const std::string bigram = corrector.decode(positions);
    const std::string snapped = corrector.snap_to_dictionary(
        bigram, recognition::builtin_corpus(), 3);

    ++out.total;
    out.raw_ok += raw == word ? 1 : 0;
    out.bigram_ok += bigram == word ? 1 : 0;
    out.snapped_ok += snapped == word ? 1 : 0;
    for (std::size_t k = 0; k < word.size() && k < raw.size(); ++k) {
      ++out.letters_total;
      out.raw_letters_ok += raw[k] == word[k] ? 1 : 0;
      if (k < snapped.size()) {
        out.snapped_letters_ok += snapped[k] == word[k] ? 1 : 0;
      }
    }
  }
  return out;
}

}  // namespace

// Second experiment: open-dictionary recognition. The main pipeline
// matches against the 10-word test lexicon; here the candidate set is the
// full built-in corpus (~130 words, length-filtered), with and without a
// bigram language-model prior added to the whole-word shape score.
static void run_dictionary_experiment() {
  std::cout << "--- open-dictionary recognition (length-filtered corpus) ---\n";
  static const recognition::LetterClassifier classifier;
  static const recognition::BigramModel lm;
  Table t({"Letters", "candidates", "shape only (%)", "shape + LM prior (%)"});
  const int reps = 1 * bench::reps_scale();
  for (std::size_t len = 3; len <= 5; ++len) {
    std::vector<std::string> candidates;
    for (const auto& w : recognition::builtin_corpus()) {
      if (w.size() == len) candidates.push_back(w);
    }
    int shape_ok = 0, lm_ok = 0, total = 0;
    std::vector<eval::TrialSpec> specs;
    for (std::size_t i = 0; i < 10; ++i) {
      for (int r = 0; r < reps; ++r) {
        eval::TrialSpec spec{eval::test_word(len, i),
                             bench::default_trial(eval::System::kPolarDraw,
                                                  6300 + 71 * len)};
        spec.cfg.seed = eval::trial_seed(spec.cfg.seed, specs.size());
        specs.push_back(std::move(spec));
      }
    }
    const auto results = eval::run_trials(specs, bench::n_threads());
    for (std::size_t n = 0; n < results.size(); ++n) {
      const std::string& word = specs[n].text;
      const auto& res = results[n];
      std::string best_shape, best_lm;
      double s_shape = 1e18, s_lm = 1e18;
      for (const auto& cand : candidates) {
        const double shape = classifier.word_score(res.trajectory, cand);
        if (shape < s_shape) {
          s_shape = shape;
          best_shape = cand;
        }
        const double with_lm =
            shape - 0.004 * lm.log_prob(cand);  // prior as a soft bonus
        if (with_lm < s_lm) {
          s_lm = with_lm;
          best_lm = cand;
        }
      }
      ++total;
      shape_ok += best_shape == word ? 1 : 0;
      lm_ok += best_lm == word ? 1 : 0;
    }
    t.add_row({std::to_string(len), std::to_string(candidates.size()),
               fmt(100.0 * shape_ok / std::max(total, 1), 1),
               fmt(100.0 * lm_ok / std::max(total, 1), 1)});
  }
  t.print(std::cout);
  std::cout << "\n";
}

static void run_experiment() {
  bench::banner("Extension: NLP post-processing",
                "Word accuracy, raw vs bigram vs dictionary-snapped");
  Table t({"Letters", "raw word (%)", "+bigram (%)", "+dictionary (%)",
           "letter acc raw (%)", "letter acc snapped (%)"});
  const int reps = 1 * bench::reps_scale();
  for (std::size_t len = 3; len <= 5; ++len) {
    const Outcome o = run(len, reps);
    t.add_row({std::to_string(len),
               fmt(100.0 * o.raw_ok / std::max(o.total, 1), 1),
               fmt(100.0 * o.bigram_ok / std::max(o.total, 1), 1),
               fmt(100.0 * o.snapped_ok / std::max(o.total, 1), 1),
               fmt(100.0 * o.raw_letters_ok / std::max(o.letters_total, 1), 1),
               fmt(100.0 * o.snapped_letters_ok / std::max(o.letters_total, 1),
                   1)});
  }
  t.print(std::cout);
  std::cout << "\nThe paper conjectures NLP lifts accuracy; the dictionary "
               "column is the measured effect of that conjecture on this "
               "substrate.\n\n";
}

static void BM_BigramDecode(benchmark::State& state) {
  const recognition::WordCorrector corrector{recognition::BigramModel{}, 1.5};
  std::vector<std::vector<recognition::LetterHypothesis>> positions;
  for (char c : std::string("HOUSE")) {
    std::vector<recognition::LetterHypothesis> hyps{{c, 0.0}};
    for (char alt : handwriting::alphabet()) {
      if (alt != c) hyps.push_back({alt, 2.0});
    }
    positions.push_back(std::move(hyps));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(corrector.decode(positions));
  }
}
BENCHMARK(BM_BigramDecode);

int main(int argc, char** argv) {
  const bench::Session session("ext_nlp");
  run_experiment();
  run_dictionary_experiment();
  return session.finish(argc, argv);
}
