// Figure 9: RSS trends reported by the two antennas during writing.
//
// The paper drives the pen through clockwise then counter-clockwise
// azimuthal sweeps (gamma = 30 deg in that figure) and shows the two
// antennas' RSS moving per Table 3: same-sign trends in the outer sectors
// (with the farther antenna changing faster) and opposite-sign trends in
// the middle sector. We script the same sweep and print the per-window
// trends plus a Table 3 consistency score.
#include "bench_common.h"

#include "common/angles.h"
#include "core/preprocess.h"
#include "core/rotation_tracker.h"
#include "sim/scene.h"

using namespace polardraw;

namespace {

struct SweepResult {
  int windows = 0;
  int consistent = 0;
};

SweepResult run_sweep(bool print) {
  sim::SceneConfig scene_cfg;
  scene_cfg.gamma_rad = deg2rad(30.0);  // the figure's setting
  scene_cfg.seed = 5;
  sim::Scene scene(scene_cfg);

  // Scripted azimuth sweep: 150 -> 30 deg (clockwise) then back, pen
  // stationary so rotation dominates RSS entirely.
  handwriting::WritingTrace trace;
  const double duration = 6.0;
  for (int i = 0; i <= 1200; ++i) {
    const double t = i * 0.005;
    const double cycle = std::fmod(t, duration);
    const double az = cycle < duration / 2.0
                          ? 150.0 - 40.0 * cycle
                          : 30.0 + 40.0 * (cycle - duration / 2.0);
    handwriting::TraceSample s;
    s.t_s = t;
    s.pen_tip = Vec3{0.5, 0.25, 0.0};
    s.angles = em::PenAngles{deg2rad(30.0), deg2rad(az)};
    s.tag_pos = s.pen_tip + em::pen_axis(s.angles) * 0.03;
    trace.samples.push_back(s);
  }
  trace.duration_s = trace.samples.back().t_s;

  const auto reports = scene.run(trace);
  core::PolarDrawConfig cfg;
  cfg.gamma_rad = scene_cfg.gamma_rad;
  const core::PhaseCalibration cal{scene.reader().port_phase_offsets()};
  const auto windows = core::preprocess(reports, cfg, &cal);

  core::RotationTracker tracker(cfg);
  SweepResult out;
  Table t({"t (s)", "rss1 (dBm)", "rss2 (dBm)", "ds1", "ds2", "decoded"});
  double prev[2] = {0, 0};
  bool have = false;
  for (const auto& w : windows) {
    if (!w.both_rss_valid()) continue;
    if (have) {
      const double ds1 = w.rss_dbm[0] - prev[0];
      const double ds2 = w.rss_dbm[1] - prev[1];
      const auto est = tracker.step(ds1, ds2);
      const bool cw_true =
          std::fmod(w.t_s, 6.0) < 3.0;  // first half of each cycle
      std::string decoded = "-";
      if (est.type == core::MotionType::kRotational) {
        const bool cw_est = est.sense == core::RotationSense::kClockwise;
        decoded = cw_est ? "cw" : "ccw";
        ++out.windows;
        out.consistent += cw_est == cw_true ? 1 : 0;
      }
      if (print && out.windows % 8 == 1 &&
          est.type == core::MotionType::kRotational) {
        t.add_row(std::vector<std::string>{fmt(w.t_s, 2), fmt(w.rss_dbm[0], 1),
                                           fmt(w.rss_dbm[1], 1), fmt(ds1, 2),
                                           fmt(ds2, 2), decoded});
      }
    }
    prev[0] = w.rss_dbm[0];
    prev[1] = w.rss_dbm[1];
    have = true;
  }
  if (print) {
    t.print(std::cout);
    std::cout << "\nRotation-sense decode consistency: " << out.consistent
              << "/" << out.windows << " windows ("
              << fmt(100.0 * out.consistent / std::max(out.windows, 1), 1)
              << "%)\n"
              << "Paper reference: Fig. 9 shows the same alternating "
                 "same-sign / opposite-sign RSS trends across sectors.\n\n";
  }
  return out;
}

}  // namespace

static void BM_RotationSweepDecode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sweep(false).consistent);
  }
}
BENCHMARK(BM_RotationSweepDecode);

int main(int argc, char** argv) {
  const bench::Session session("fig09");
  bench::banner("Figure 9", "Two-antenna RSS trends while writing (gamma=30)");
  run_sweep(true);
  return session.finish(argc, argv);
}
