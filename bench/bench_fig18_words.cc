// Figure 18: word recognition accuracy vs word length, three systems.
//
// Ten dictionary words per length group (2-5 letters). The paper finds
// all three systems >91% at two letters, degrading slowly with length;
// two-antenna PolarDraw degrades slightly faster but stays above 75%.
#include "bench_common.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Figure 18", "Word recognition accuracy vs word length");
  Table t({"Letters", "PolarDraw-2 (%)", "RF-IDraw-4 (%)", "Tagoram-4 (%)"});
  const int reps = 1 * bench::reps_scale();
  bench::Stopwatch watch;
  bench::TrialTimes times;
  for (std::size_t len = 2; len <= 5; ++len) {
    std::array<double, 3> acc{};
    const eval::System systems[3] = {eval::System::kPolarDraw,
                                     eval::System::kRfIdraw4,
                                     eval::System::kTagoram4};
    for (int s = 0; s < 3; ++s) {
      auto cfg = bench::default_trial(systems[s], 7000 + 997 * len);
      std::vector<eval::TrialResult> results;
      acc[s] = 100.0 * eval::word_accuracy(len, reps, cfg, &results,
                                           bench::n_threads());
      times.add(results);
    }
    bench::record_metric("accuracy_polardraw_len" + std::to_string(len),
                         acc[0] / 100.0);
    t.add_row({std::to_string(len), fmt(acc[0], 1), fmt(acc[1], 1),
               fmt(acc[2], 1)});
  }
  bench::emit(t, "fig18_words");
  std::cout << "\nPaper reference: all >91% at 2 letters; PolarDraw "
               "declines a little faster with length but stays >75%.\n";
  times.report(std::cout, watch.seconds());
  std::cout << "\n";
}

static void BM_WordTrial(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 70);
  for (auto _ : state) {
    cfg.seed += 1;
    benchmark::DoNotOptimize(eval::run_trial("SUN", cfg).all_correct);
  }
}
BENCHMARK(BM_WordTrial);

int main(int argc, char** argv) {
  const bench::Session session("fig18");
  run_experiment();
  return session.finish(argc, argv);
}
