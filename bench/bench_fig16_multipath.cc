// Figure 16: impact of a nearby bystander (static and dynamic multipath).
//
// A second person stands (static multipath) or walks (dynamic multipath)
// at 30/60/90 cm from the whiteboard while the user writes. The paper
// finds PolarDraw essentially unaffected at 90 cm and only mildly
// degraded at 30 cm (>=83%).
#include "bench_common.h"

#include "channel/scatterer.h"
#include "core/polardraw.h"
#include "recognition/classifier.h"
#include "sim/scene.h"

using namespace polardraw;

namespace {

double run_with_bystander(double distance_m, bool walking, int reps,
                          std::uint64_t seed) {
  int correct = 0, total = 0;
  for (char c : bench::ten_letters()) {
    for (int r = 0; r < reps; ++r) {
      auto cfg = bench::default_trial(eval::System::kPolarDraw,
                                      seed + 131 * r + c);
      // Inject the bystander through the scene's extra scatterers by
      // running the trial manually (the harness has no hook for this).
      eval::apply_system_layout(cfg);
      cfg.scene.seed = cfg.seed;
      sim::Scene scene(cfg.scene);
      const Vec3 board_center{0.5, 0.25, 0.0};
      scene.add_scatterer(
          walking ? channel::make_bystander_walking(distance_m, board_center)
                  : channel::make_bystander_static(distance_m, board_center));
      Rng rng(cfg.seed * 7919 + 13);
      const auto trace =
          handwriting::synthesize(std::string(1, c), cfg.synth, rng);
      const auto reports = scene.run(trace);
      const core::PhaseCalibration cal{scene.reader().port_phase_offsets()};
      const auto apos = scene.antenna_board_positions();
      core::PolarDraw tracker(cfg.algo, apos[0], apos[1], 0.12);
      const auto traj = tracker.track(reports, &cal).trajectory;
      static const recognition::LetterClassifier classifier;
      ++total;
      correct += classifier.classify(traj).letter == c ? 1 : 0;
    }
  }
  return static_cast<double>(correct) / std::max(total, 1);
}

}  // namespace

static void run_experiment() {
  bench::banner("Figure 16", "Bystander multipath: static vs dynamic");
  Table t({"Bystander distance (cm)", "Static acc (%)", "Dynamic acc (%)"});
  const int reps = 2 * bench::reps_scale();
  for (double cm : {90.0, 60.0, 30.0}) {
    const double s = run_with_bystander(cm / 100.0, false, reps, 3000);
    const double d = run_with_bystander(cm / 100.0, true, reps, 4000);
    t.add_row({fmt(cm, 0), fmt(s * 100.0, 1), fmt(d * 100.0, 1)});
  }
  bench::emit(t, "fig16_multipath");
  std::cout << "\nPaper reference: insensitive at 90 cm; static ~87% and "
               "dynamic ~83% at 30 cm.\n\n";
}

static void BM_BystanderChannelEval(benchmark::State& state) {
  auto channel = channel::make_office_channel(5);
  channel.add(channel::make_bystander_walking(0.3, Vec3{0.5, 0.25, 0.0}));
  em::ReaderAntenna ant = em::make_linear_antenna(Vec3{0.2, 1.25, 0.12}, 1.83);
  ant.boresight = Vec3{0.0, -1.0, 0.0};
  em::Tag tag;
  tag.position = Vec3{0.5, 0.25, 0.0};
  tag.dipole_axis = Vec3{0.2, 0.3, 0.93};
  em::TxConfig tx;
  double t = 0.0;
  for (auto _ : state) {
    t += 0.01;
    benchmark::DoNotOptimize(channel.evaluate(ant, tag, tx, t).response);
  }
}
BENCHMARK(BM_BystanderChannelEval);

int main(int argc, char** argv) {
  const bench::Session session("fig16");
  run_experiment();
  return session.finish(argc, argv);
}
