// Figure 2: recovered trajectory of the strokes "WoW, M, C, W, Z".
//
// The paper's teaser figure shows PolarDraw's recovered pen trail for a
// short word and four letters across a ~100 x 20 cm strip. We regenerate
// the same content: track each item, then print the concatenated ASCII
// rendering and each item's Procrustes distance.
#include "bench_common.h"

#include "recognition/procrustes.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Figure 2", "Recovered trajectory: WoW, M, C, W, Z");
  const std::vector<std::string> items{"WOW", "M", "C", "W", "Z"};
  Table t({"Item", "Procrustes (cm)", "Recognized"});
  bench::Stopwatch watch;
  std::vector<eval::TrialSpec> specs;
  for (std::size_t i = 0; i < items.size(); ++i) {
    specs.push_back(
        {items[i], bench::default_trial(eval::System::kPolarDraw, 1000 + i)});
  }
  const auto results = eval::run_trials(specs, bench::n_threads());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& res = results[i];
    t.add_row({items[i], fmt(res.procrustes_m * 100.0, 1), res.recognized});
    std::vector<std::pair<double, double>> pts;
    for (const auto& p : res.trajectory) pts.emplace_back(p.x, p.y);
    std::cout << "\n--- " << items[i] << " ---\n"
              << ascii_plot(pts, 60, 14) << "\n";
  }
  t.print(std::cout);
  std::cout << "\nPaper reference: Fig. 2 shows legible recovered strokes "
               "across a 100 x 20 cm strip.\n";
  bench::TrialTimes times;
  times.add(results);
  times.report(std::cout, watch.seconds());
  std::cout << "\n";
}

static void BM_TrackLetter(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::run_trial("W", cfg).trajectory);
  }
}
BENCHMARK(BM_TrackLetter);

int main(int argc, char** argv) {
  const bench::Session session("fig02");
  run_experiment();
  return session.finish(argc, argv);
}
