// Table 5 + Figure 22: recognition accuracy vs tag-to-reader distance.
//
// The paper sweeps the distance from 20 cm to 140 cm in 20 cm steps:
// accuracy is poor at 20 cm (RSS mixes polarization and range effects),
// rises to a plateau near 1 m and slightly declines beyond (multipath
// alters the apparent polarization angle at range).
#include "bench_common.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Table 5 / Figure 22",
                "Recognition accuracy vs tag-to-reader distance");
  Table t({"Distance (cm)", "Accuracy (%)", "Paper (%)"});
  const int paper[7] = {77, 83, 87, 90, 91, 90, 88};
  const int reps = 2 * bench::reps_scale();
  bench::Stopwatch watch;
  bench::TrialTimes times;
  int idx = 0;
  for (int cm = 20; cm <= 140; cm += 20, ++idx) {
    auto cfg = bench::default_trial(eval::System::kPolarDraw,
                                    500 + static_cast<std::uint64_t>(cm));
    cfg.scene.antenna_standoff_m = cm / 100.0;
    std::vector<eval::TrialResult> results;
    const double acc = eval::letter_accuracy(
        bench::ten_letters(), reps, cfg, nullptr, bench::n_threads(), &results);
    times.add(results);
    t.add_row({std::to_string(cm), fmt(acc * 100.0, 1),
               std::to_string(paper[idx])});
  }
  bench::emit(t, "tab05_distance");
  std::cout << "\nExpected shape: low at 20 cm (RSS mixes translation and "
               "rotation), plateau near 80-120 cm, mild decline beyond.\n";
  times.report(std::cout, watch.seconds());
  std::cout << "\n";
}

static void BM_TrialAtOneMeter(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::run_trial("A", cfg).all_correct);
  }
}
BENCHMARK(BM_TrialAtOneMeter);

int main(int argc, char** argv) {
  const bench::Session session("tab05");
  run_experiment();
  return session.finish(argc, argv);
}
