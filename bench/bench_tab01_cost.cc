// Table 1: infrastructure cost comparison.
//
// A static bill-of-materials table (the paper's own numbers): PolarDraw's
// two-antenna rig halves Tagoram's cost and is ~3.4x cheaper than
// RF-IDraw's. Reproduced verbatim since it is a price list, plus the
// derived cost ratios the introduction quotes.
#include "bench_common.h"

using namespace polardraw;

static void print_table() {
  bench::banner("Table 1", "Infrastructure cost comparison");
  Table t({"Item", "Unit cost ($)", "Quantity", "Total ($)"});
  t.add_row({"Reader (2-port)", "285", "1", "285"});
  t.add_row({"Antenna (Laird pa9-12)", "79", "2", "158"});
  t.add_row({"PolarDraw system", "", "", "443"});
  t.add_row({"Reader (4-port)", "398", "1", "398"});
  t.add_row({"Antenna (Yap-100cp)", "135", "4", "540"});
  t.add_row({"Tagoram system", "", "", "938"});
  t.add_row({"Reader (4-port)", "398", "2", "796"});
  t.add_row({"Antenna (An-900lh)", "89", "8", "712"});
  t.add_row({"RF-IDraw system", "", "", "1508"});
  t.print(std::cout);
  std::cout << "\nDerived: PolarDraw / Tagoram cost = " << fmt(443.0 / 938.0, 2)
            << " (the paper's 'reduces the infrastructure cost by half')\n"
            << "         PolarDraw / RF-IDraw cost = " << fmt(443.0 / 1508.0, 2)
            << "\n\n";
}

// Micro-timing: the cost table is static, so time the table renderer.
static void BM_TableRender(benchmark::State& state) {
  for (auto _ : state) {
    Table t({"a", "b"});
    for (int i = 0; i < 16; ++i) t.add_row_values({1.0 * i, 2.0 * i});
    std::ostringstream os;
    t.print(os);
    benchmark::DoNotOptimize(os.str());
  }
}
BENCHMARK(BM_TableRender);

int main(int argc, char** argv) {
  const bench::Session session("tab01");
  print_table();
  return session.finish(argc, argv);
}
