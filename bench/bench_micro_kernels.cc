// Micro-benchmarks of the computational kernels (google-benchmark only,
// no experiment table): channel evaluation, pre-processing, Viterbi
// decoding, Procrustes/DTW scoring, and the stroke synthesizer. These
// quantify the real-time claim (Viterbi "can be computed in real-time
// even with an embedded mini PC", section 3.5).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "channel/multipath.h"
#include "common/angles.h"
#include "core/decode_testbed.h"
#include "core/hmm_tracker.h"
#include "core/polardraw.h"
#include "eval/harness.h"
#include "handwriting/synthesizer.h"
#include "recognition/dtw.h"
#include "recognition/procrustes.h"
#include "sim/scene.h"

using namespace polardraw;

namespace {

/// A cached full trial's worth of raw reports + geometry.
struct Fixture {
  rfid::TagReportStream reports;
  core::PhaseCalibration cal;
  Vec2 a1, a2;
  core::PolarDrawConfig algo;
  std::vector<Vec2> truth;
  std::vector<Vec2> recovered;

  static const Fixture& get() {
    static const Fixture f = [] {
      Fixture fx;
      eval::TrialConfig cfg;
      cfg.system = eval::System::kPolarDraw;
      cfg.seed = 11;
      eval::apply_system_layout(cfg);
      cfg.scene.seed = cfg.seed;
      sim::Scene scene(cfg.scene);
      Rng rng(cfg.seed * 7919 + 13);
      const auto trace = handwriting::synthesize("B", cfg.synth, rng);
      fx.reports = scene.run(trace);
      fx.cal.port_offsets_rad = scene.reader().port_phase_offsets();
      const auto apos = scene.antenna_board_positions();
      fx.a1 = apos[0];
      fx.a2 = apos[1];
      fx.algo = cfg.algo;
      fx.truth = handwriting::flatten_strokes(trace.ground_truth);
      core::PolarDraw tracker(fx.algo, fx.a1, fx.a2, 0.12);
      fx.recovered = tracker.track(fx.reports, &fx.cal).trajectory;
      return fx;
    }();
    return f;
  }
};

}  // namespace

static void BM_ChannelEvaluate(benchmark::State& state) {
  const auto channel = channel::make_office_channel(5);
  em::ReaderAntenna ant = em::make_linear_antenna(Vec3{0.2, 1.25, 0.12}, 1.8);
  ant.boresight = Vec3{0.0, -1.0, 0.0};
  em::Tag tag;
  tag.position = Vec3{0.5, 0.25, 0.0};
  tag.dipole_axis = Vec3{0.3, 0.2, 0.93};
  em::TxConfig tx;
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    benchmark::DoNotOptimize(channel.evaluate(ant, tag, tx, t).response);
  }
}
BENCHMARK(BM_ChannelEvaluate);

static void BM_Preprocess(benchmark::State& state) {
  const auto& fx = Fixture::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::preprocess(fx.reports, fx.algo, &fx.cal).size());
  }
}
BENCHMARK(BM_Preprocess);

static void BM_FullTrack(benchmark::State& state) {
  const auto& fx = Fixture::get();
  core::PolarDraw tracker(fx.algo, fx.a1, fx.a2, 0.12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tracker.track(fx.reports, &fx.cal).trajectory.size());
  }
  // Real-time check: one letter spans several seconds of writing.
  state.counters["windows"] = static_cast<double>(
      core::preprocess(fx.reports, fx.algo, &fx.cal).size());
}
BENCHMARK(BM_FullTrack);

static void BM_ExpandKernelDecode(benchmark::State& state,
                                  core::DecodeKernel kernel) {
  // The two beam-expansion kernels (core/expand_kernel.h) head to head on
  // the seeded decode testbed -- the isolated cost of the Eq. 8/11
  // candidate-scoring loop that dominates BM_HmmDecode.
  core::PolarDrawConfig cfg;
  cfg.decode_kernel = kernel;
  const auto tb = core::make_decode_testbed(cfg, 100, 42);
  const core::HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm.decode(tb.obs, &tb.start).size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK_CAPTURE(BM_ExpandKernelDecode, scalar,
                  core::DecodeKernel::kScalar)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExpandKernelDecode, vector,
                  core::DecodeKernel::kVector)
    ->Unit(benchmark::kMillisecond);

static void BM_ViterbiBeamWidth(benchmark::State& state) {
  const auto& fx = Fixture::get();
  auto algo = fx.algo;
  algo.beam_width = static_cast<std::size_t>(state.range(0));
  core::PolarDraw tracker(algo, fx.a1, fx.a2, 0.12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tracker.track(fx.reports, &fx.cal).trajectory.size());
  }
}
BENCHMARK(BM_ViterbiBeamWidth)->Arg(100)->Arg(300)->Arg(600)->Arg(1200);

static void BM_Procrustes(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto a = recognition::resample_by_arclength(fx.truth, 64);
  const auto b = recognition::resample_by_arclength(fx.recovered, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recognition::procrustes(a, b).rms_distance);
  }
}
BENCHMARK(BM_Procrustes);

static void BM_Dtw(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto a = recognition::resample_by_arclength(fx.truth, 64);
  const auto b = recognition::resample_by_arclength(fx.recovered, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recognition::dtw_distance(a, b));
  }
}
BENCHMARK(BM_Dtw);

static void BM_ClassifyLetter(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const recognition::LetterClassifier cls;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cls.classify(fx.recovered).letter);
  }
}
BENCHMARK(BM_ClassifyLetter);

static void BM_SynthesizeLetter(benchmark::State& state) {
  handwriting::SynthesisConfig cfg;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    benchmark::DoNotOptimize(
        handwriting::synthesize("W", cfg, rng).samples.size());
  }
}
BENCHMARK(BM_SynthesizeLetter);

int main(int argc, char** argv) {
  const bench::Session session("micro_kernels");
  return session.finish(argc, argv);
}
