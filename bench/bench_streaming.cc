// Streaming decode service benchmark: push-to-commit latency and session
// throughput for the fixed-lag decoder behind server/session_server.h, on
// a deterministic seeded load (N synthetic pens from core/decode_testbed.h
// submitted round-robin, pump() once per round), plus the accuracy-vs-lag
// ladder for the fixed-lag commit rule.
//
// PD_BENCH_SMOKE=1 shrinks the board and the load for sanitizer CI; the
// TSan streaming-soak step additionally raises the session count via
// PD_STREAM_SESSIONS to stress the worker pool (POLARDRAW_THREADS sets the
// pump worker count). Latency percentiles come from the
// server.push_to_commit_s histogram, so the JSON export carries the same
// numbers a production registry would.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "bench_common.h"
#include "core/decode_testbed.h"
#include "core/hmm_tracker.h"
#include "core/phase_field.h"
#include "core/streaming_decoder.h"
#include "server/session_server.h"

using namespace polardraw;
using namespace polardraw::core;
using polardraw::server::SessionId;
using polardraw::server::SessionServer;
using polardraw::server::SessionServerConfig;

namespace {

PolarDrawConfig bench_config(bool smoke) {
  PolarDrawConfig cfg;  // default board/config is the headline number
  if (smoke) {
    cfg.board_width_m = 0.3;
    cfg.board_height_m = 0.2;
    cfg.block_m = 0.005;
    cfg.beam_width = 150;
  }
  return cfg;
}

int session_count(bool smoke) {
  if (const char* env = std::getenv("PD_STREAM_SESSIONS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return smoke ? 16 : 32;
}

/// The server load: `n_pens` seeded pens, reports interleaved round-robin,
/// pump() after every round. Returns total observations submitted. When
/// `status_mid` is non-null and empty, captures SessionServer::status()
/// at the halfway round — a live statusz document with every session
/// seeded and mid-decode — for the STATUS_<name>.json export.
std::size_t run_server_load(const PolarDrawConfig& cfg, int n_pens,
                            int n_windows, std::size_t lag,
                            std::string* status_mid = nullptr) {
  std::vector<DecodeTestbed> pens;
  pens.reserve(static_cast<std::size_t>(n_pens));
  for (int p = 0; p < n_pens; ++p) {
    pens.push_back(
        make_decode_testbed(cfg, n_windows, static_cast<std::uint64_t>(p) + 1));
  }
  SessionServerConfig scfg;
  scfg.stream.lag_windows = lag;
  SessionServer server(cfg, pens[0].a1, pens[0].a2, pens[0].antenna_z, scfg);
  for (int p = 0; p < n_pens; ++p) {
    server.open(static_cast<SessionId>(p), &pens[static_cast<std::size_t>(p)].start);
  }
  for (int w = 0; w < n_windows; ++w) {
    for (int p = 0; p < n_pens; ++p) {
      server.submit(static_cast<SessionId>(p),
                    pens[static_cast<std::size_t>(p)].obs[static_cast<std::size_t>(w)]);
    }
    server.pump();
    if (status_mid != nullptr && status_mid->empty() && w == n_windows / 2) {
      *status_mid = server.status();
    }
  }
  std::size_t sink = 0;
  for (int p = 0; p < n_pens; ++p) {
    sink += server.close(static_cast<SessionId>(p)).size();
  }
  benchmark::DoNotOptimize(sink);
  return static_cast<std::size_t>(n_pens) * static_cast<std::size_t>(n_windows);
}

/// Mean committed-position deviation from the batch decode at a given lag,
/// on the seed-42 testbed pen.
double accuracy_at_lag(const PolarDrawConfig& cfg, int n_windows,
                       std::size_t lag) {
  const auto tb = make_decode_testbed(cfg, n_windows, 42);
  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  const auto batch = hmm.decode(tb.obs, &tb.start);

  StreamingConfig scfg;
  scfg.lag_windows = lag;
  StreamingDecoder dec(cfg, tb.a1, tb.a2, tb.antenna_z, scfg, nullptr,
                       &tb.start);
  std::vector<Vec2> streamed;
  for (const auto& o : tb.obs) {
    dec.push(o);
    dec.poll(streamed);
  }
  dec.finish(streamed);

  if (streamed.size() != batch.size() || batch.empty()) return -1.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    sum += streamed[i].dist(batch[i]);
  }
  return sum / static_cast<double>(batch.size());
}

void run_experiment(bool smoke) {
  const auto cfg = bench_config(smoke);
  const int n_pens = session_count(smoke);
  const int n_windows = smoke ? 24 : 120;
  const std::size_t lag = 8;
  const int reps = bench::reps_scale();

  std::size_t total_obs = 0;
  std::string status_mid;
  const bench::Stopwatch watch;
  for (int r = 0; r < reps; ++r) {
    total_obs += run_server_load(cfg, n_pens, n_windows, lag,
                                 r == 0 ? &status_mid : nullptr);
  }
  const double elapsed = watch.seconds();
  if (!status_mid.empty()) bench::write_status_json("streaming", status_mid);
  const double obs_per_s =
      elapsed > 0.0 ? static_cast<double>(total_obs) / elapsed : 0.0;

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const obs::HistogramSnapshot* lat = snap.histogram("server.push_to_commit_s");
  const double p50_ms = lat != nullptr ? 1e3 * lat->percentile(50.0) : 0.0;
  const double p99_ms = lat != nullptr ? 1e3 * lat->percentile(99.0) : 0.0;

  bench::record_metric("pens", n_pens);
  bench::record_metric("windows", n_windows);
  bench::record_metric("lag_windows", static_cast<double>(lag));
  bench::record_metric("observations_per_s", obs_per_s);
  bench::record_metric("push_to_commit_p50_ms", p50_ms);
  bench::record_metric("push_to_commit_p99_ms", p99_ms);
  std::cout << "Streaming load: " << n_pens << " pens x " << n_windows
            << " windows (lag " << lag << ") in " << fmt(elapsed, 3)
            << " s = " << fmt(obs_per_s, 0)
            << " obs/s; push-to-commit p50 " << fmt(p50_ms, 3)
            << " ms, p99 " << fmt(p99_ms, 3) << " ms.\n";

  // Accuracy-vs-lag ladder: how far fixed-lag commits drift from the batch
  // decode of the same trace. Full lag pins the bit-identity contract (0).
  const std::vector<std::size_t> lags = {4, 8, 16};
  for (const std::size_t l : lags) {
    const double acc = accuracy_at_lag(cfg, n_windows, l);
    bench::record_metric("accuracy_lag" + std::to_string(l) + "_m", acc);
    std::cout << "Accuracy vs batch at lag " << l << ": mean deviation "
              << fmt(acc, 4) << " m.\n";
  }
  const double acc_full =
      accuracy_at_lag(cfg, n_windows, static_cast<std::size_t>(n_windows) + 1);
  bench::record_metric("accuracy_full_lag_m", acc_full);
  std::cout << "Accuracy vs batch at full lag: mean deviation "
            << fmt(acc_full, 4) << " m (bit-identity contract).\n";
}

void BM_StreamingPushPoll(benchmark::State& state, bool smoke) {
  const int n = static_cast<int>(state.range(0));
  const auto lag = static_cast<std::size_t>(state.range(1));
  const auto cfg = bench_config(smoke);
  const auto tb = make_decode_testbed(cfg, n, 42);
  const auto field =
      std::make_shared<const PhaseField>(cfg, tb.a1, tb.a2, tb.antenna_z);
  for (auto _ : state) {
    StreamingConfig scfg;
    scfg.lag_windows = lag;
    StreamingDecoder dec(cfg, tb.a1, tb.a2, tb.antenna_z, scfg, field,
                         &tb.start);
    std::vector<Vec2> out;
    for (const auto& o : tb.obs) {
      dec.push(o);
      dec.poll(out);
    }
    dec.finish(out);
    benchmark::DoNotOptimize(out.size());
  }
  state.counters["windows/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ServerRound(benchmark::State& state, bool smoke) {
  // One round-robin submit + pump across 8 live sessions; the decoders
  // keep absorbing the same windows, which is fine for timing the pump
  // path (arena compaction keeps per-session memory bounded).
  const auto cfg = bench_config(smoke);
  const int n_windows = smoke ? 16 : 64;
  std::vector<DecodeTestbed> pens;
  for (int p = 0; p < 8; ++p) {
    pens.push_back(
        make_decode_testbed(cfg, n_windows, static_cast<std::uint64_t>(p) + 1));
  }
  SessionServerConfig scfg;
  scfg.stream.lag_windows = 8;
  SessionServer server(cfg, pens[0].a1, pens[0].a2, pens[0].antenna_z, scfg);
  for (int p = 0; p < 8; ++p) {
    server.open(static_cast<SessionId>(p), &pens[static_cast<std::size_t>(p)].start);
  }
  std::size_t w = 0;
  for (auto _ : state) {
    for (int p = 0; p < 8; ++p) {
      server.submit(static_cast<SessionId>(p),
                    pens[static_cast<std::size_t>(p)].obs[w]);
    }
    benchmark::DoNotOptimize(server.pump());
    w = (w + 1) % static_cast<std::size_t>(n_windows);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session("streaming");
  // The latency percentiles come from the metrics registry; enable it even
  // outside JSON mode so the console report has real numbers (metrics are
  // observation-only and never change decode results).
  obs::Registry::global().set_enabled(true);
  const bool smoke = bench::smoke_mode();
  run_experiment(smoke);
  if (bench::json_only_mode()) {
    return session.write_json() ? 0 : 1;
  }
  const std::int64_t len = smoke ? 16 : 200;
  for (const std::int64_t lag : {std::int64_t{4}, std::int64_t{16}}) {
    benchmark::RegisterBenchmark(
        "BM_StreamingPushPoll",
        [smoke](benchmark::State& s) { BM_StreamingPushPoll(s, smoke); })
        ->Args({len, lag})
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "BM_ServerRound",
      [smoke](benchmark::State& s) { BM_ServerRound(s, smoke); })
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return session.write_json() ? 0 : 1;
}
