// Contended multi-pen end-to-end load (paper section 7 at scale): N pens
// write simultaneously through one MAC-arbitrated Gen2 inventory
// (collisions burn air time; per-tag read rates emerge from Q adaptation),
// the EPC-keyed stream feeds core::TagTrackAssociator, and the resulting
// PenEvents drive server::SessionServer decodes -- the full multi-user
// pipeline in one pass, frequency hopping on with per-channel calibration.
//
// Headline metrics (BENCH_multipen.json, benchdiff-gated):
//   * fairness_accuracy     -- Jain index of per-tag read rates; 1.0 is a
//                              perfectly fair MAC. "accuracy" keys the
//                              abs-tol benchdiff class, so starvation
//                              regressions fail the gate.
//   * min/mean read rates   -- per-tag budget under contention.
//   * collision_fraction    -- slot-level MAC overhead (warn-only trend).
//   * reports_per_s / positions_per_s -- pipeline throughput.
//
// Two pens enter mid-run and one leaves early, so the association layer's
// open/close churn is part of the measured path. PD_BENCH_SMOKE=1 shrinks
// the write duration and the decode grid, not the pen count -- the
// contention pattern is the point of this bench.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/association.h"
#include "handwriting/synthesizer.h"
#include "server/session_server.h"
#include "sim/scene.h"

using namespace polardraw;

namespace {

constexpr int kPens = 8;

struct Pen {
  std::uint32_t epc = 0;
  handwriting::WritingTrace trace;
  double t_enter_s = 0.0;
  double t_leave_s = 1e300;
};

std::vector<Pen> make_pens(double duration_s, Rng& rng) {
  // Distinct letters, origins and user styles across the board.
  const std::string letters = "MZANKWOS";
  std::vector<Pen> pens;
  pens.reserve(kPens);
  for (int p = 0; p < kPens; ++p) {
    handwriting::SynthesisConfig synth;
    synth.auto_center = false;
    synth.origin = {0.08 + 0.11 * static_cast<double>(p % 4),
                    p < 4 ? 0.12 : 0.38};
    synth.user = handwriting::user_style(1 + p % 4);
    Pen pen;
    pen.epc = 0xA0u + static_cast<std::uint32_t>(p);
    pen.trace = handwriting::synthesize(std::string(1, letters[
                                            static_cast<std::size_t>(p)]),
                                        synth, rng);
    // Churn: the last two pens arrive mid-run, the first leaves early.
    if (p >= kPens - 2) pen.t_enter_s = 0.3 * duration_s;
    if (p == 0) pen.t_leave_s = 0.7 * duration_s;
    pens.push_back(std::move(pen));
  }
  return pens;
}

void run_experiment(bool smoke) {
  sim::SceneConfig scene_cfg;
  scene_cfg.seed = 77;
  scene_cfg.reader.frequency_hopping = true;
  scene_cfg.reader.auto_select_modulation = false;
  sim::Scene scene(scene_cfg);

  Rng rng(9);
  const double duration_s = smoke ? 2.0 : 6.0;
  auto pens = make_pens(duration_s, rng);

  std::vector<rfid::TagEntry> tags;
  tags.reserve(pens.size());
  for (auto& pen : pens) {
    const auto* trace = &pen.trace;
    tags.push_back(rfid::TagEntry{
        pen.epc, [trace](double t) { return sim::tag_at_time(*trace, t); },
        pen.t_enter_s, pen.t_leave_s});
  }

  // Per-port and per-channel calibration: the associator may then compare
  // phases straight across hop boundaries.
  core::PhaseCalibration cal;
  cal.port_offsets_rad = scene.reader().port_phase_offsets();
  cal.channel_offsets_rad.reserve(
      static_cast<std::size_t>(scene_cfg.reader.hop_channels));
  for (int c = 0; c < scene_cfg.reader.hop_channels; ++c) {
    cal.channel_offsets_rad.push_back(rfid::Reader::hop_channel_offset_rad(c));
  }

  core::PolarDrawConfig algo;
  algo.gamma_rad = scene_cfg.gamma_rad;
  if (smoke) {
    algo.block_m = 0.01;
    algo.beam_width = 150;
  }
  const auto apos = scene.antenna_board_positions();

  const int reps = bench::reps_scale();
  std::string status_mid;
  std::size_t total_reports = 0;
  std::size_t total_positions = 0;
  std::size_t total_sessions = 0;
  double fairness = 0.0;
  double min_rate = 0.0, mean_rate = 0.0;
  const bench::Stopwatch watch;
  for (int r = 0; r < reps; ++r) {
    // --- MAC-arbitrated inventory ---------------------------------------
    const auto reports =
        scene.reader().inventory_population(tags, 0.0, duration_s);
    total_reports += reports.size();

    // --- Per-tag read rates over each tag's presence window -------------
    std::vector<std::size_t> reads(pens.size(), 0);
    for (const auto& rep : reports) {
      for (std::size_t p = 0; p < pens.size(); ++p) {
        if (rep.epc == pens[p].epc) {
          ++reads[p];
          break;
        }
      }
    }
    double sum = 0.0, sum_sq = 0.0;
    min_rate = 1e300;
    for (std::size_t p = 0; p < pens.size(); ++p) {
      const double present_s =
          std::min(pens[p].t_leave_s, duration_s) - pens[p].t_enter_s;
      const double rate =
          static_cast<double>(reads[p]) / std::max(present_s, 1e-9);
      sum += rate;
      sum_sq += rate * rate;
      min_rate = std::min(min_rate, rate);
    }
    mean_rate = sum / static_cast<double>(pens.size());
    // Jain fairness index of per-tag read rates: 1 when the MAC shares the
    // air perfectly, 1/N when one tag monopolizes it.
    fairness = sum_sq > 0.0
                   ? sum * sum / (static_cast<double>(pens.size()) * sum_sq)
                   : 0.0;

    // --- Association + streaming decode ---------------------------------
    core::TagTrackAssociator assoc(algo, {}, &cal);
    server::SessionServer server(algo, apos[0], apos[1],
                                 scene_cfg.antenna_standoff_m);
    std::vector<server::SessionServer::ClosedSession> closed;
    // Chunked ingest (~one pump per 32 reports) models a polling frontend.
    constexpr std::size_t kChunk = 32;
    for (std::size_t i = 0; i < reports.size(); i += kChunk) {
      rfid::TagReportStream chunk(
          reports.begin() + static_cast<std::ptrdiff_t>(i),
          reports.begin() +
              static_cast<std::ptrdiff_t>(std::min(i + kChunk,
                                                   reports.size())));
      server.ingest(assoc.push(chunk), &closed);
      server.pump();
      // Capture a live statusz document once, mid-run on the first rep,
      // while the association churn has sessions open and mid-decode.
      if (r == 0 && status_mid.empty() && i >= reports.size() / 2) {
        status_mid = server.status();
      }
    }
    server.ingest(assoc.flush(), &closed);
    total_sessions += closed.size();
    for (const auto& c : closed) total_positions += c.trajectory.size();
  }
  const double elapsed = watch.seconds();
  if (!status_mid.empty()) bench::write_status_json("multipen", status_mid);

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const auto singles = snap.counter("rfid.gen2.singletons");
  const auto collisions = snap.counter("rfid.gen2.collisions");
  const auto empties = snap.counter("rfid.gen2.empties");
  const double slots_total =
      static_cast<double>(singles + collisions + empties);
  const double collision_fraction =
      slots_total > 0.0 ? static_cast<double>(collisions) / slots_total : 0.0;

  bench::record_metric("pens", kPens);
  bench::record_metric("duration_s_simulated", duration_s);
  bench::record_metric("fairness_accuracy", fairness);
  bench::record_metric("min_tag_reads_per_s", min_rate);
  bench::record_metric("mean_tag_reads_per_s", mean_rate);
  bench::record_metric("collision_fraction", collision_fraction);
  bench::record_metric("sessions_closed",
                       static_cast<double>(total_sessions) / reps);
  bench::record_metric(
      "reports_per_s",
      elapsed > 0.0 ? static_cast<double>(total_reports) / elapsed : 0.0);
  bench::record_metric(
      "positions_per_s",
      elapsed > 0.0 ? static_cast<double>(total_positions) / elapsed : 0.0);

  std::cout << "Multi-pen load: " << kPens << " pens, " << fmt(duration_s, 1)
            << " s air x " << reps << " reps -> "
            << total_reports / static_cast<std::size_t>(reps)
            << " reports/rep, " << total_sessions / static_cast<std::size_t>(reps)
            << " sessions, "
            << total_positions / static_cast<std::size_t>(reps)
            << " positions.\n"
            << "Fairness (Jain) " << fmt(fairness, 4) << "; per-tag rate min "
            << fmt(min_rate, 1) << " / mean " << fmt(mean_rate, 1)
            << " reads/s; collision fraction " << fmt(collision_fraction, 3)
            << ".\n";
}

}  // namespace

int main() {
  const bench::Session session("multipen");
  // Fairness/collision metrics come from the registry; enable it even
  // outside JSON mode so the console report has real numbers.
  obs::Registry::global().set_enabled(true);
  run_experiment(bench::smoke_mode());
  return session.write_json() ? 0 : 1;
}
