// Table 7: recognition accuracy vs the assumed elevation angle alpha_e.
//
// PolarDraw fixes alpha_e to a constant when inverting Eq. 1; the paper
// sweeps the assumption from -45 to +45 degrees and finds accuracy flat
// (90-93%), justifying the simplification. We run the same sweep while
// the true (synthesized) elevation stays at its default ~30 degrees.
#include "bench_common.h"

#include "common/angles.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Table 7", "Accuracy vs assumed elevation angle alpha_e");
  Table t({"alpha_e (deg)", "Accuracy (%)", "Paper (%)"});
  const int paper[6] = {91, 91, 92, 91, 93, 90};
  const int sweep[6] = {-45, -30, -15, 15, 30, 45};
  const int reps = 2 * bench::reps_scale();
  bench::Stopwatch watch;
  bench::TrialTimes times;
  for (int i = 0; i < 6; ++i) {
    auto cfg = bench::default_trial(eval::System::kPolarDraw,
                                    1100 + static_cast<std::uint64_t>(i));
    cfg.algo.alpha_e_rad = deg2rad(static_cast<double>(sweep[i]));
    std::vector<eval::TrialResult> results;
    const double acc = eval::letter_accuracy(
        bench::ten_letters(), reps, cfg, nullptr, bench::n_threads(), &results);
    times.add(results);
    t.add_row({std::to_string(sweep[i]), fmt(acc * 100.0, 1),
               std::to_string(paper[i])});
  }
  bench::emit(t, "tab07_alpha_e");
  std::cout << "\nExpected shape: flat across the sweep -- the assumed "
               "elevation barely matters (paper: 90-93% throughout).\n";
  times.report(std::cout, watch.seconds());
  std::cout << "\n";
}

static void BM_TrialNegativeElevation(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 6);
  cfg.algo.alpha_e_rad = deg2rad(-30.0);
  for (auto _ : state) {
    cfg.seed += 1;
    benchmark::DoNotOptimize(eval::run_trial("C", cfg).all_correct);
  }
}
BENCHMARK(BM_TrialNegativeElevation);

int main(int argc, char** argv) {
  const bench::Session session("tab07");
  run_experiment();
  return session.finish(argc, argv);
}
