// Figure 14: the letter confusion matrix.
//
// Rows are the written letter, columns the recognized one. The paper
// observes that errors concentrate on letters with similar writing styles
// (L misread as I, V as U) and that single-stroke letters fare better.
#include "bench_common.h"

#include "handwriting/stroke_font.h"
#include "recognition/classifier.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Figure 14", "Letter confusion matrix");
  const int reps = 3 * bench::reps_scale();
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 999);
  recognition::ConfusionMatrix cm;
  bench::Stopwatch watch;
  std::vector<eval::TrialResult> results;
  eval::letter_accuracy("ABCDEFGHIJKLMNOPQRSTUVWXYZ", reps, cfg, &cm,
                        bench::n_threads(), &results);
  const double elapsed = watch.seconds();

  // Compact rendering: intensity glyphs per cell (columns A..Z).
  std::cout << "    ";
  for (char c : handwriting::alphabet()) std::cout << c << ' ';
  std::cout << "\n";
  for (char row : handwriting::alphabet()) {
    std::cout << row << " | ";
    for (char col : handwriting::alphabet()) {
      const double r = cm.rate(row, col);
      const char mark = r >= 0.75 ? '#' : r >= 0.4 ? '+' : r > 0.0 ? '.' : ' ';
      std::cout << mark << ' ';
    }
    std::cout << "| " << fmt(cm.accuracy(row) * 100.0, 0) << "%\n";
  }

  // Top off-diagonal confusions.
  std::cout << "\nLargest confusions (truth -> recognized):\n";
  struct Entry { char a, b; int n; };
  std::vector<Entry> entries;
  for (char a : handwriting::alphabet()) {
    for (char b : handwriting::alphabet()) {
      if (a == b) continue;
      const int n = cm.count(a, b);
      if (n > 0) entries.push_back({a, b, n});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& x, const Entry& y) { return x.n > y.n; });
  for (std::size_t i = 0; i < entries.size() && i < 8; ++i) {
    std::cout << "  " << entries[i].a << " -> " << entries[i].b << "  ("
              << entries[i].n << "x)\n";
  }

  // The paper's qualitative claim: single-stroke letters do better.
  double single = 0.0, multi = 0.0;
  int ns = 0, nm = 0;
  for (char c : handwriting::alphabet()) {
    if (handwriting::glyph_stroke_count(handwriting::glyph_for(c)) == 1) {
      single += cm.accuracy(c);
      ++ns;
    } else {
      multi += cm.accuracy(c);
      ++nm;
    }
  }
  std::cout << "\nSingle-stroke letters mean accuracy: "
            << fmt(100.0 * single / std::max(ns, 1), 1)
            << "%  vs multi-stroke: " << fmt(100.0 * multi / std::max(nm, 1), 1)
            << "% (paper: single-stroke letters recognize better).\n";
  bench::TrialTimes times;
  times.add(results);
  times.report(std::cout, elapsed);
  std::cout << "\n";
}

static void BM_ConfusionBookkeeping(benchmark::State& state) {
  recognition::ConfusionMatrix cm;
  int i = 0;
  for (auto _ : state) {
    cm.record(static_cast<char>('A' + (i % 26)),
              static_cast<char>('A' + ((i * 7) % 26)));
    benchmark::DoNotOptimize(cm.overall_accuracy());
    ++i;
  }
}
BENCHMARK(BM_ConfusionBookkeeping);

int main(int argc, char** argv) {
  const bench::Session session("fig14");
  run_experiment();
  return session.finish(argc, argv);
}
