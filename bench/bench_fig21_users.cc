// Figure 21: recognition accuracy across users, three systems.
//
// Four writers with distinct styles; User 2 is instructed to write with
// an unnaturally "stiff" wrist (almost no pen rotation), probing graceful
// degradation of the polarization path. The paper finds all systems
// roughly consistent across users, PolarDraw slightly diminished for the
// stiff writer but still high.
#include "bench_common.h"

#include "handwriting/user.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Figure 21", "Recognition accuracy across users");
  Table t({"User", "PolarDraw-2 (%)", "RF-IDraw-4 (%)", "Tagoram-4 (%)"});
  const int reps = 2 * bench::reps_scale();
  bench::Stopwatch watch;
  bench::TrialTimes times;
  for (int user = 1; user <= 4; ++user) {
    std::array<double, 3> acc{};
    const eval::System systems[3] = {eval::System::kPolarDraw,
                                     eval::System::kRfIdraw4,
                                     eval::System::kTagoram4};
    for (int s = 0; s < 3; ++s) {
      auto cfg = bench::default_trial(systems[s], 9000 + 101 * user);
      cfg.synth.user = handwriting::user_style(user);
      std::vector<eval::TrialResult> results;
      acc[s] = eval::letter_accuracy(bench::ten_letters(), reps, cfg, nullptr,
                                     bench::n_threads(), &results) *
               100.0;
      times.add(results);
    }
    t.add_row({handwriting::user_style(user).name, fmt(acc[0], 1),
               fmt(acc[1], 1), fmt(acc[2], 1)});
  }
  bench::emit(t, "fig21_users");
  std::cout << "\nPaper reference: consistent accuracy across users; "
               "User 2's stiff style dents PolarDraw only slightly.\n";
  times.report(std::cout, watch.seconds());
  std::cout << "\n";
}

static void BM_StiffUserTrial(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 2);
  cfg.synth.user = handwriting::user_style(2);
  for (auto _ : state) {
    cfg.seed += 1;
    benchmark::DoNotOptimize(eval::run_trial("L", cfg).all_correct);
  }
}
BENCHMARK(BM_StiffUserTrial);

int main(int argc, char** argv) {
  const bench::Session session("fig21");
  run_experiment();
  return session.finish(argc, argv);
}
