// Figure 13: per-letter recognition accuracy over the alphabet.
//
// The paper has a volunteer write each of the 26 letters 100 times and
// reports 93.6% mean accuracy, with 15/26 letters above 90% and all
// letters above 80%. We run the same protocol at reduced repetitions
// (PD_BENCH_REPS scales it up) and print the per-letter rates.
#include "bench_common.h"

#include "recognition/classifier.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Figure 13", "Letter recognition accuracy (A-Z)");
  const int reps = 4 * bench::reps_scale();
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 777);
  recognition::ConfusionMatrix cm;
  bench::Stopwatch watch;
  std::vector<eval::TrialResult> results;
  const double overall = eval::letter_accuracy(
      "ABCDEFGHIJKLMNOPQRSTUVWXYZ", reps, cfg, &cm, bench::n_threads(),
      &results);
  const double elapsed = watch.seconds();
  bench::record_metric("accuracy", overall);
  bench::TrialTimes times;
  times.add(results);

  Table t({"Letter", "Accuracy (%)", "Top confusion"});
  int above90 = 0, above85 = 0, above80 = 0;
  for (char c : handwriting::alphabet()) {
    const double acc = cm.accuracy(c) * 100.0;
    above90 += acc >= 90.0 ? 1 : 0;
    above85 += acc >= 85.0 ? 1 : 0;
    above80 += acc >= 80.0 ? 1 : 0;
    std::string conf = "-";
    if (const auto top = cm.top_confusion(c)) conf = std::string(1, *top);
    t.add_row({std::string(1, c), fmt(acc, 0), conf});
  }
  bench::emit(t, "fig13_letters");
  std::cout << "\nOverall accuracy: " << fmt(overall * 100.0, 1) << "% over "
            << cm.total() << " trials (paper: 93.6%).\n"
            << "Letters >=90%: " << above90 << "/26 (paper: 15), >=85%: "
            << above85 << "/26 (paper: 21), >=80%: " << above80
            << "/26 (paper: 26).\n";
  times.report(std::cout, elapsed);
  std::cout << "\n";
}

static void BM_LetterTrial(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 3);
  for (auto _ : state) {
    cfg.seed += 1;
    benchmark::DoNotOptimize(eval::run_trial("E", cfg).all_correct);
  }
}
BENCHMARK(BM_LetterTrial);

int main(int argc, char** argv) {
  const bench::Session session("fig13");
  run_experiment();
  return session.finish(argc, argv);
}
