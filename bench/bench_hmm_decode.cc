// Decode hot-path benchmark: windows/sec and wall time per trajectory
// length for the HMM Viterbi decoder (and the Kalman/particle consumers
// of the shared phase-field cache), on seeded synthetic observation
// streams (core/decode_testbed.h) over the default board and config.
//
// PD_BENCH_SMOKE=1 registers a tiny variant (small grid, few windows)
// for sanitizer CI: same code paths, seconds instead of minutes under
// ASan+UBSan.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_common.h"
#include "core/decode_testbed.h"
#include "core/hmm_tracker.h"
#include "core/kalman_tracker.h"
#include "core/particle_tracker.h"
#include "core/phase_field.h"

using namespace polardraw;
using namespace polardraw::core;

namespace {

PolarDrawConfig bench_config(bool smoke) {
  PolarDrawConfig cfg;  // default board/config is the headline number
  if (smoke) {
    cfg.board_width_m = 0.3;
    cfg.board_height_m = 0.2;
    cfg.block_m = 0.005;
    cfg.beam_width = 150;
  }
  return cfg;
}

void add_window_rate(benchmark::State& state, int n_windows) {
  state.counters["windows/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n_windows,
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * n_windows);
}

void BM_HmmDecode(benchmark::State& state, bool smoke, DecodeKernel kernel) {
  const int n = static_cast<int>(state.range(0));
  auto cfg = bench_config(smoke);
  cfg.decode_kernel = kernel;
  const auto tb = make_decode_testbed(cfg, n, 42);
  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm.decode(tb.obs, &tb.start).size());
  }
  add_window_rate(state, n);
}

void BM_HmmTrackerConstruct(benchmark::State& state, bool smoke) {
  // Per-track setup cost (includes building the phase-field cache).
  const auto cfg = bench_config(smoke);
  const auto tb = make_decode_testbed(cfg, 1, 42);
  for (auto _ : state) {
    const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
    benchmark::DoNotOptimize(hmm.cols());
  }
}

void BM_KalmanDecode(benchmark::State& state, bool smoke) {
  const int n = static_cast<int>(state.range(0));
  const auto cfg = bench_config(smoke);
  const auto tb = make_decode_testbed(cfg, n, 42);
  const KalmanTracker kf(cfg, KalmanConfig{}, tb.a1, tb.a2, tb.antenna_z);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kf.decode(tb.obs, &tb.start).size());
  }
  add_window_rate(state, n);
}

void BM_ParticleDecode(benchmark::State& state, bool smoke) {
  const int n = static_cast<int>(state.range(0));
  const auto cfg = bench_config(smoke);
  const auto tb = make_decode_testbed(cfg, n, 42);
  ParticleTracker pf(cfg, ParticleFilterConfig{}, tb.a1, tb.a2,
                     tb.antenna_z);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf.decode(tb.obs, &tb.start).size());
  }
  add_window_rate(state, n);
}

// Headline experiment for the JSON export: a fixed-rep decode loop on the
// seeded testbed, independent of google-benchmark (which JSON-only mode
// skips), recording decode throughput in windows/s for both beam-expansion
// kernels. `windows_per_s` stays the scalar reference number (baseline
// continuity); `vector_windows_per_s` is the vector path, each gated by
// benchdiff's throughput tolerance. `vector_speedup` is informational
// (unknown metric class: warn-only).
double run_kernel_experiment(bool smoke, DecodeKernel kernel, int n,
                             int reps) {
  auto cfg = bench_config(smoke);
  cfg.decode_kernel = kernel;
  const auto tb = make_decode_testbed(cfg, n, 42);
  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  std::size_t sink = 0;
  const bench::Stopwatch watch;
  for (int r = 0; r < reps; ++r) {
    sink += hmm.decode(tb.obs, &tb.start).size();
  }
  const double elapsed = watch.seconds();
  const double windows_per_s =
      elapsed > 0.0 ? static_cast<double>(reps) * n / elapsed : 0.0;
  const char* name = kernel == DecodeKernel::kVector ? "vector" : "scalar";
  std::cout << "HMM decode [" << name << "]: " << reps << " x " << n
            << " windows (" << sink << " states) in " << fmt(elapsed, 3)
            << " s = " << fmt(windows_per_s, 0) << " windows/s.\n";
  return windows_per_s;
}

void run_experiment(bool smoke) {
  const int n = smoke ? 16 : 200;
  const int reps = (smoke ? 3 : 10) * bench::reps_scale();
  const double scalar_rate =
      run_kernel_experiment(smoke, DecodeKernel::kScalar, n, reps);
  const double vector_rate =
      run_kernel_experiment(smoke, DecodeKernel::kVector, n, reps);
  bench::record_metric("windows", static_cast<double>(n));
  bench::record_metric("decode_reps", reps);
  bench::record_metric("windows_per_s", scalar_rate);
  bench::record_metric("vector_windows_per_s", vector_rate);
  bench::record_metric("vector_speedup",
                       scalar_rate > 0.0 ? vector_rate / scalar_rate : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Session session("hmm_decode");
  const bool smoke = bench::smoke_mode();
  run_experiment(smoke);
  if (bench::json_only_mode()) {
    return session.write_json() ? 0 : 1;
  }
  const std::vector<std::int64_t> lengths =
      smoke ? std::vector<std::int64_t>{16}
            : std::vector<std::int64_t>{50, 200, 800};
  for (const auto n : lengths) {
    benchmark::RegisterBenchmark(
        "BM_HmmDecode/scalar",
        [smoke](benchmark::State& s) {
          BM_HmmDecode(s, smoke, DecodeKernel::kScalar);
        })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        "BM_HmmDecode/vector",
        [smoke](benchmark::State& s) {
          BM_HmmDecode(s, smoke, DecodeKernel::kVector);
        })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "BM_HmmTrackerConstruct",
      [smoke](benchmark::State& s) { BM_HmmTrackerConstruct(s, smoke); })
      ->Unit(benchmark::kMillisecond);
  const std::int64_t filter_len = smoke ? 16 : 200;
  benchmark::RegisterBenchmark(
      "BM_KalmanDecode",
      [smoke](benchmark::State& s) { BM_KalmanDecode(s, smoke); })
      ->Arg(filter_len)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "BM_ParticleDecode",
      [smoke](benchmark::State& s) { BM_ParticleDecode(s, smoke); })
      ->Arg(filter_len)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return session.write_json() ? 0 : 1;
}
