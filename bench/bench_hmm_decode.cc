// Decode hot-path benchmark: windows/sec and wall time per trajectory
// length for the HMM Viterbi decoder (and the Kalman/particle consumers
// of the shared phase-field cache), on seeded synthetic observation
// streams (core/decode_testbed.h) over the default board and config.
//
// PD_BENCH_SMOKE=1 registers a tiny variant (small grid, few windows)
// for sanitizer CI: same code paths, seconds instead of minutes under
// ASan+UBSan.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/decode_testbed.h"
#include "core/hmm_tracker.h"
#include "core/kalman_tracker.h"
#include "core/particle_tracker.h"
#include "core/phase_field.h"

using namespace polardraw;
using namespace polardraw::core;

namespace {

PolarDrawConfig bench_config(bool smoke) {
  PolarDrawConfig cfg;  // default board/config is the headline number
  if (smoke) {
    cfg.board_width_m = 0.3;
    cfg.board_height_m = 0.2;
    cfg.block_m = 0.005;
    cfg.beam_width = 150;
  }
  return cfg;
}

void add_window_rate(benchmark::State& state, int n_windows) {
  state.counters["windows/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n_windows,
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * n_windows);
}

void BM_HmmDecode(benchmark::State& state, bool smoke) {
  const int n = static_cast<int>(state.range(0));
  const auto cfg = bench_config(smoke);
  const auto tb = make_decode_testbed(cfg, n, 42);
  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm.decode(tb.obs, &tb.start).size());
  }
  add_window_rate(state, n);
}

void BM_HmmTrackerConstruct(benchmark::State& state, bool smoke) {
  // Per-track setup cost (includes building the phase-field cache).
  const auto cfg = bench_config(smoke);
  const auto tb = make_decode_testbed(cfg, 1, 42);
  for (auto _ : state) {
    const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
    benchmark::DoNotOptimize(hmm.cols());
  }
}

void BM_KalmanDecode(benchmark::State& state, bool smoke) {
  const int n = static_cast<int>(state.range(0));
  const auto cfg = bench_config(smoke);
  const auto tb = make_decode_testbed(cfg, n, 42);
  const KalmanTracker kf(cfg, KalmanConfig{}, tb.a1, tb.a2, tb.antenna_z);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kf.decode(tb.obs, &tb.start).size());
  }
  add_window_rate(state, n);
}

void BM_ParticleDecode(benchmark::State& state, bool smoke) {
  const int n = static_cast<int>(state.range(0));
  const auto cfg = bench_config(smoke);
  const auto tb = make_decode_testbed(cfg, n, 42);
  ParticleTracker pf(cfg, ParticleFilterConfig{}, tb.a1, tb.a2,
                     tb.antenna_z);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf.decode(tb.obs, &tb.start).size());
  }
  add_window_rate(state, n);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("PD_BENCH_SMOKE") != nullptr;
  const std::vector<std::int64_t> lengths =
      smoke ? std::vector<std::int64_t>{16}
            : std::vector<std::int64_t>{50, 200, 800};
  for (const auto n : lengths) {
    benchmark::RegisterBenchmark(
        "BM_HmmDecode", [smoke](benchmark::State& s) { BM_HmmDecode(s, smoke); })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "BM_HmmTrackerConstruct",
      [smoke](benchmark::State& s) { BM_HmmTrackerConstruct(s, smoke); })
      ->Unit(benchmark::kMillisecond);
  const std::int64_t filter_len = smoke ? 16 : 200;
  benchmark::RegisterBenchmark(
      "BM_KalmanDecode",
      [smoke](benchmark::State& s) { BM_KalmanDecode(s, smoke); })
      ->Arg(filter_len)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "BM_ParticleDecode",
      [smoke](benchmark::State& s) { BM_ParticleDecode(s, smoke); })
      ->Arg(filter_len)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
