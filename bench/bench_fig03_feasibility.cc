// Figure 3(b,c): the feasibility study.
//
// (b) A tag rotating on a turntable under a linearly polarized antenna:
//     RSS swings with the polarization mismatch angle (deep nulls at
//     90/270 degrees where reads also start failing) while the phase
//     stays flat except for spurious jumps near the nulls.
// (c) A tag translated back and forth 8 cm: RSS stays flat while the
//     phase ramps up and down with distance.
#include "bench_common.h"

#include "common/angles.h"
#include "rfid/reader.h"
#include "sim/scene.h"

using namespace polardraw;

namespace {

/// Builds the feasibility rig of Fig. 3(a): one linear antenna straight
/// above the tag (the paper uses a 2.5 m drop; we keep 1.5 m so the link
/// stays comfortably above sensitivity at deep mismatch).
rfid::Reader make_rig(std::uint64_t seed) {
  rfid::ReaderConfig cfg;
  cfg.auto_select_modulation = false;
  cfg.fixed_modulation = rfid::Modulation::kFM0;
  em::ReaderAntenna ant = em::make_linear_antenna(
      Vec3{0.0, 1.5, 0.0}, kPi / 2.0);
  ant.boresight = Vec3{0.0, -1.0, 0.0};
  ant.polarization_axis = Vec3{0.0, 0.0, 1.0};  // along +Z
  return rfid::Reader(cfg, {ant}, channel::make_office_channel(5), Rng(seed));
}

void rotation_experiment() {
  std::cout << "--- (b) tag rotating on the turntable ---\n";
  Table t({"mismatch (deg)", "RSS (dBm)", "phase (rad)", "reads"});
  auto reader = make_rig(3);
  const auto offset = reader.port_phase_offsets()[0];
  for (int deg = 0; deg <= 180; deg += 15) {
    // The tag lies flat on the turntable; its azimuth sweeps the X-Z
    // plane, so the mismatch with the Z-polarized antenna is 90 - azimuth.
    const double azimuth = deg2rad(90.0 - deg);
    em::Tag tag;
    tag.position = Vec3{0.0, 0.0, 0.0};
    tag.dipole_axis = em::pen_axis({0.0, azimuth});
    RunningStats rss, phase;
    int reads = 0;
    for (int k = 0; k < 40; ++k) {
      if (const auto rep = reader.interrogate(0, tag, 0.01 * k)) {
        rss.push(rep->rss_dbm);
        phase.push(wrap_pi(rep->phase_rad - offset));
        ++reads;
      }
    }
    t.add_row({std::to_string(deg),
               reads > 0 ? fmt(rss.mean(), 1) : "no read",
               reads > 0 ? fmt(phase.mean(), 2) : "-",
               std::to_string(reads) + "/40"});
  }
  t.print(std::cout);
  std::cout << "Paper reference: RSS peaks around -24 dBm aligned, fades "
               "toward the 90 deg null where reads drop and the phase "
               "jumps (spurious reflections).\n\n";
}

void translation_experiment() {
  std::cout << "--- (c) tag moving back and forth (8 cm) ---\n";
  Table t({"t (s)", "position (cm)", "RSS (dBm)", "unwrapped phase (rad)"});
  auto reader = make_rig(4);
  PhaseUnwrapper unwrap;
  for (int i = 0; i <= 24; ++i) {
    const double t_s = i * 0.25;
    // Triangle wave: out 8 cm over 3 s, back over 3 s.
    const double cycle = std::fmod(t_s, 6.0);
    const double x = cycle < 3.0 ? 0.08 * cycle / 3.0
                                 : 0.08 * (6.0 - cycle) / 3.0;
    em::Tag tag;
    tag.position = Vec3{x, 0.0, 0.0};
    tag.dipole_axis = Vec3{0.0, 0.0, 1.0};  // aligned throughout
    RunningStats rss;
    double phase = 0.0;
    int reads = 0;
    for (int k = 0; k < 10; ++k) {
      if (const auto rep = reader.interrogate(0, tag, t_s + 0.005 * k)) {
        rss.push(rep->rss_dbm);
        phase = unwrap.push(rep->phase_rad);
        ++reads;
      }
    }
    if (reads > 0) {
      t.add_row({fmt(t_s, 2), fmt(x * 100.0, 1), fmt(rss.mean(), 1),
                 fmt(phase, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "Paper reference: RSS stays roughly constant while the "
               "phase ramps with the movement and returns.\n\n";
}

}  // namespace

static void BM_Interrogate(benchmark::State& state) {
  auto reader = make_rig(9);
  em::Tag tag;
  tag.position = Vec3{0.0, 0.0, 0.0};
  tag.dipole_axis = Vec3{0.0, 0.0, 1.0};
  double t = 0.0;
  for (auto _ : state) {
    t += 0.01;
    benchmark::DoNotOptimize(reader.interrogate(0, tag, t));
  }
}
BENCHMARK(BM_Interrogate);

int main(int argc, char** argv) {
  const bench::Session session("fig03");
  bench::banner("Figure 3", "Feasibility study: polarization vs RSS/phase");
  rotation_experiment();
  translation_experiment();
  return session.finish(argc, argv);
}
