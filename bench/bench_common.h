// Shared scaffolding for the experiment benches.
//
// Every bench binary reproduces one table or figure from the paper: it
// runs the experiment, prints the paper-style rows (plus the paper's
// numbers for side-by-side comparison), and then runs a google-benchmark
// micro-timing of the kernel that dominates that experiment. All binaries
// run standalone with no arguments; PD_BENCH_REPS scales the trial count
// (default keeps the full suite to a few minutes on one core).
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "eval/harness.h"

namespace polardraw::bench {

/// Repetition multiplier from the environment (default 1).
inline int reps_scale() {
  const char* env = std::getenv("PD_BENCH_REPS");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v > 0 ? v : 1;
}

/// Worker threads for the batch trial API: POLARDRAW_THREADS when set,
/// otherwise all hardware threads. Trial results are bit-identical at any
/// value; this only changes wall-clock time.
inline int n_threads() { return eval::default_thread_count(); }

/// Wall-clock stopwatch for the experiment sections.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates per-trial wall times (TrialResult::wall_s) across an
/// experiment and prints the batch-throughput summary line.
class TrialTimes {
 public:
  void add(const std::vector<eval::TrialResult>& results) {
    for (const auto& r : results) times_.push_back(r.wall_s);
  }
  void add(const eval::TrialResult& result) { times_.push_back(result.wall_s); }

  /// "N trials in W s on T threads (cpu X s, mean Y ms/trial, p90 Z ms)".
  void report(std::ostream& os, double elapsed_s) const {
    if (times_.empty()) return;
    double cpu = 0.0;
    for (double t : times_) cpu += t;
    os << times_.size() << " trials in " << fmt(elapsed_s, 2) << " s on "
       << n_threads() << " thread(s): trial cpu " << fmt(cpu, 2)
       << " s, mean " << fmt(1e3 * cpu / static_cast<double>(times_.size()), 1)
       << " ms/trial, p90 " << fmt(percentile(times_, 90.0) * 1e3, 1)
       << " ms.\n";
  }

 private:
  std::vector<double> times_;
};

/// Prints the standard bench banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "==============================================================\n"
            << id << ": " << title << "\n"
            << "==============================================================\n";
}

/// Runs the registered google-benchmark timings (after the experiment).
inline int run_microbench(int argc, char** argv) {
  // Keep micro-timings short; the experiment above is the real payload.
  int fake_argc = 2;
  char arg0[] = "bench";
  char arg1[] = "--benchmark_min_time=0.05";
  char* fake_argv[] = {argc > 0 ? argv[0] : arg0, arg1, nullptr};
  ::benchmark::Initialize(&fake_argc, fake_argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

/// Prints a table and, when PD_BENCH_CSV_DIR is set, also writes it as
/// <dir>/<name>.csv for downstream plotting.
inline void emit(const Table& t, const std::string& name) {
  t.print(std::cout);
  if (const char* dir = std::getenv("PD_BENCH_CSV_DIR")) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream csv(std::string(dir) + "/" + name + ".csv");
    if (csv) t.write_csv(csv);
  }
}

/// A default trial config for PolarDraw experiments.
inline eval::TrialConfig default_trial(eval::System system,
                                       std::uint64_t seed) {
  eval::TrialConfig cfg;
  cfg.system = system;
  cfg.seed = seed;
  return cfg;
}

/// Letter set used by the "randomly choose 10 letters" microbenchmarks.
inline const std::string& ten_letters() {
  static const std::string s = "ACELMOSUWZ";
  return s;
}

}  // namespace polardraw::bench
