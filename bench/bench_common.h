// Shared scaffolding for the experiment benches.
//
// Every bench binary reproduces one table or figure from the paper: it
// runs the experiment, prints the paper-style rows (plus the paper's
// numbers for side-by-side comparison), and then runs a google-benchmark
// micro-timing of the kernel that dominates that experiment. All binaries
// run standalone with no arguments; PD_BENCH_REPS scales the trial count
// (default keeps the full suite to a few minutes on one core).
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "eval/harness.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace polardraw::bench {

/// Repetition multiplier from the environment (default 1).
inline int reps_scale() {
  const char* env = std::getenv("PD_BENCH_REPS");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v > 0 ? v : 1;
}

/// True when the environment variable is set to anything but "0".
inline bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && std::string(env) != "0";
}

/// Smoke mode (PD_BENCH_SMOKE): tiny configurations, seconds not minutes.
inline bool smoke_mode() { return env_flag("PD_BENCH_SMOKE"); }

/// JSON-only mode (PD_BENCH_JSON_ONLY): the benchjson runner wants the
/// experiment + BENCH_<name>.json and skips the google-benchmark timings.
inline bool json_only_mode() { return env_flag("PD_BENCH_JSON_ONLY"); }

/// Headline metrics recorded by the experiment sections for the JSON
/// export (insertion-ordered; re-recording a key overwrites its value).
inline std::vector<std::pair<std::string, double>>& recorded_metrics() {
  static std::vector<std::pair<std::string, double>> metrics;
  return metrics;
}

/// Records (or overwrites) one headline metric, e.g. the experiment's
/// aggregate accuracy. Safe to call with no Session alive.
inline void record_metric(const std::string& key, double value) {
  for (auto& [k, v] : recorded_metrics()) {
    if (k == key) {
      v = value;
      return;
    }
  }
  recorded_metrics().emplace_back(key, value);
}

/// Worker threads for the batch trial API: POLARDRAW_THREADS when set,
/// otherwise all hardware threads. Trial results are bit-identical at any
/// value; this only changes wall-clock time.
inline int n_threads() { return eval::default_thread_count(); }

/// Wall-clock stopwatch for the experiment sections.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates per-trial wall times (TrialResult::wall_s) across an
/// experiment and prints the batch-throughput summary line.
class TrialTimes {
 public:
  void add(const std::vector<eval::TrialResult>& results) {
    for (const auto& r : results) times_.push_back(r.wall_s);
  }
  void add(const eval::TrialResult& result) { times_.push_back(result.wall_s); }

  /// "N trials in W s on T threads (cpu X s, mean Y ms/trial, p90 Z ms)".
  /// Also records the batch's trial-wall summary (count, p50/p95 ms) as
  /// headline metrics so the JSON export surfaces TrialResult::wall_s.
  void report(std::ostream& os, double elapsed_s) const {
    if (times_.empty()) return;
    double cpu = 0.0;
    for (double t : times_) cpu += t;
    const auto n = static_cast<double>(times_.size());
    record_metric("trials", n);
    record_metric("trial_wall_p50_ms", 1e3 * percentile(times_, 50.0));
    record_metric("trial_wall_p95_ms", 1e3 * percentile(times_, 95.0));
    os << times_.size() << " trials in " << fmt(elapsed_s, 2) << " s on "
       << n_threads() << " thread(s): trial cpu " << fmt(cpu, 2)
       << " s, mean " << fmt(1e3 * cpu / n, 1)
       << " ms/trial, p90 " << fmt(percentile(times_, 90.0) * 1e3, 1)
       << " ms.\n";
  }

 private:
  std::vector<double> times_;
};

/// Writes <dir>/STATUS_<bench>.json from a statusz document (the
/// SessionServer::status() string) captured mid-run, so CI can validate
/// the live-introspection schema against a real in-flight server
/// (`benchjson --validate-status`). The document is written verbatim —
/// it is already JSON. No-op (returns true) without PD_BENCH_JSON_DIR;
/// returns false when the file cannot be written.
inline bool write_status_json(const std::string& bench,
                              const std::string& status_doc) {
  const char* dir = std::getenv("PD_BENCH_JSON_DIR");
  if (dir == nullptr) return true;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = std::string(dir) + "/STATUS_" + bench + ".json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "bench: PD_BENCH_JSON_DIR is not writable, cannot write "
              << path << "\n";
    return false;
  }
  os << status_doc << "\n";
  return os.good();
}

/// Prints the standard bench banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "==============================================================\n"
            << id << ": " << title << "\n"
            << "==============================================================\n";
}

/// Runs the registered google-benchmark timings (after the experiment).
inline int run_microbench(int argc, char** argv) {
  // Keep micro-timings short; the experiment above is the real payload.
  int fake_argc = 2;
  char arg0[] = "bench";
  char arg1[] = "--benchmark_min_time=0.05";
  char* fake_argv[] = {argc > 0 ? argv[0] : arg0, arg1, nullptr};
  ::benchmark::Initialize(&fake_argc, fake_argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

/// One bench binary's JSON-export session (DESIGN.md section 11).
///
/// Construct before the experiment, finish() after it:
///
///   int main(int argc, char** argv) {
///     bench::Session session("fig13");
///     run_experiment();                 // bench::record_metric(...) inside
///     return session.finish(argc, argv);
///   }
///
/// When PD_BENCH_JSON_DIR is set the constructor enables (and resets) the
/// metrics registry so the pipeline's spans and counters accumulate, and
/// finish() writes <dir>/BENCH_<name>.json: git SHA (PD_GIT_SHA), run
/// config, the recorded headline metrics, all registry counters/gauges,
/// and per-stage span percentiles. finish() then runs the registered
/// google-benchmark timings unless PD_BENCH_JSON_ONLY is set.
class Session {
 public:
  explicit Session(std::string name) : name_(std::move(name)) {
    if (json_enabled()) {
      obs::Registry::global().set_enabled(true);
      obs::Registry::global().reset();
    }
    if (trace_enabled()) {
      // The tracer also self-enables at startup from PD_TRACE_DIR; reset
      // here so the trace covers exactly this session's experiment.
      obs::Tracer::global().set_enabled(true);
      obs::Tracer::global().reset();
      obs::Tracer::global().set_current_thread_name("main");
    }
  }

  /// True when finish() will write BENCH_<name>.json.
  [[nodiscard]] static bool json_enabled() {
    return std::getenv("PD_BENCH_JSON_DIR") != nullptr;
  }

  /// True when finish() will write TRACE_<name>.json (DESIGN.md sec. 12).
  [[nodiscard]] static bool trace_enabled() {
    return std::getenv("PD_TRACE_DIR") != nullptr;
  }

  /// Writes the Chrome trace-event export (no-op without PD_TRACE_DIR).
  /// Returns false when the file could not be written.
  bool write_trace() const {
    const char* dir = std::getenv("PD_TRACE_DIR");
    if (dir == nullptr) return true;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path =
        std::string(dir) + "/TRACE_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: PD_TRACE_DIR is not writable, cannot write "
                << path << "\n";
      return false;
    }
    obs::Tracer::global().write_chrome_trace(os);
    return os.good();
  }

  /// Writes the JSON export (no-op without PD_BENCH_JSON_DIR) and, when
  /// tracing, the TRACE_<name>.json timeline. Returns false when either
  /// file could not be written.
  bool write_json() const {
    const bool trace_ok = write_trace();
    const char* dir = std::getenv("PD_BENCH_JSON_DIR");
    if (dir == nullptr) return trace_ok;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!std::filesystem::exists(dir)) {
      std::cerr << "benchjson: PD_BENCH_JSON_DIR (" << dir
                << ") does not exist and could not be created\n";
      return false;
    }
    const std::string path =
        std::string(dir) + "/BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "benchjson: PD_BENCH_JSON_DIR is not writable, cannot "
                << "write " << path << "\n";
      return false;
    }
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const char* sha = std::getenv("PD_GIT_SHA");
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("schema_version", 1);
    w.kv("name", name_);
    w.kv("git_sha", sha != nullptr ? sha : "unknown");
    w.kv("smoke", smoke_mode());
    w.kv("wall_s", watch_.seconds());
    w.key("config");
    w.begin_object();
    w.kv("reps_scale", reps_scale());
    w.kv("threads", n_threads());
    w.end_object();
    w.key("metrics");
    w.begin_object();
    for (const auto& [k, v] : recorded_metrics()) w.kv(k, v);
    w.end_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [k, v] : snap.counters) w.kv(k, v);
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [k, v] : snap.gauges) w.kv(k, v);
    w.end_object();
    w.key("stages");
    w.begin_object();
    for (const auto& [k, h] : snap.histograms) {
      w.key(k);
      w.begin_object();
      w.kv("count", h.count);
      w.kv("total_s", h.sum);
      w.kv("mean_ms", 1e3 * h.mean());
      w.kv("p50_ms", 1e3 * h.percentile(50.0));
      w.kv("p95_ms", 1e3 * h.percentile(95.0));
      w.end_object();
    }
    w.end_object();
    w.end_object();
    os << "\n";
    return os.good() && trace_ok;
  }

  /// Writes the JSON export, then runs the registered microbenchmarks
  /// (skipped in JSON-only mode). Returns the process exit code.
  int finish(int argc, char** argv) const {
    const bool ok = write_json();
    if (json_only_mode()) return ok ? 0 : 1;
    const int rc = run_microbench(argc, argv);
    return ok ? rc : 1;
  }

 private:
  std::string name_;
  Stopwatch watch_;
};

/// Prints a table and, when PD_BENCH_CSV_DIR is set, also writes it as
/// <dir>/<name>.csv for downstream plotting.
inline void emit(const Table& t, const std::string& name) {
  t.print(std::cout);
  if (const char* dir = std::getenv("PD_BENCH_CSV_DIR")) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream csv(std::string(dir) + "/" + name + ".csv");
    if (csv) t.write_csv(csv);
  }
}

/// A default trial config for PolarDraw experiments.
inline eval::TrialConfig default_trial(eval::System system,
                                       std::uint64_t seed) {
  eval::TrialConfig cfg;
  cfg.system = system;
  cfg.seed = seed;
  return cfg;
}

/// Letter set used by the "randomly choose 10 letters" microbenchmarks.
inline const std::string& ten_letters() {
  static const std::string s = "ACELMOSUWZ";
  return s;
}

}  // namespace polardraw::bench
