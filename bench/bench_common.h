// Shared scaffolding for the experiment benches.
//
// Every bench binary reproduces one table or figure from the paper: it
// runs the experiment, prints the paper-style rows (plus the paper's
// numbers for side-by-side comparison), and then runs a google-benchmark
// micro-timing of the kernel that dominates that experiment. All binaries
// run standalone with no arguments; PD_BENCH_REPS scales the trial count
// (default keeps the full suite to a few minutes on one core).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common/stats.h"
#include "common/table.h"
#include "eval/harness.h"

namespace polardraw::bench {

/// Repetition multiplier from the environment (default 1).
inline int reps_scale() {
  const char* env = std::getenv("PD_BENCH_REPS");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v > 0 ? v : 1;
}

/// Prints the standard bench banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "==============================================================\n"
            << id << ": " << title << "\n"
            << "==============================================================\n";
}

/// Runs the registered google-benchmark timings (after the experiment).
inline int run_microbench(int argc, char** argv) {
  // Keep micro-timings short; the experiment above is the real payload.
  int fake_argc = 2;
  char arg0[] = "bench";
  char arg1[] = "--benchmark_min_time=0.05";
  char* fake_argv[] = {argc > 0 ? argv[0] : arg0, arg1, nullptr};
  ::benchmark::Initialize(&fake_argc, fake_argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

/// Prints a table and, when PD_BENCH_CSV_DIR is set, also writes it as
/// <dir>/<name>.csv for downstream plotting.
inline void emit(const Table& t, const std::string& name) {
  t.print(std::cout);
  if (const char* dir = std::getenv("PD_BENCH_CSV_DIR")) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream csv(std::string(dir) + "/" + name + ".csv");
    if (csv) t.write_csv(csv);
  }
}

/// A default trial config for PolarDraw experiments.
inline eval::TrialConfig default_trial(eval::System system,
                                       std::uint64_t seed) {
  eval::TrialConfig cfg;
  cfg.system = system;
  cfg.seed = seed;
  return cfg;
}

/// Letter set used by the "randomly choose 10 letters" microbenchmarks.
inline const std::string& ten_letters() {
  static const std::string s = "ACELMOSUWZ";
  return s;
}

}  // namespace polardraw::bench
