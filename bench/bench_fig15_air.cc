// Figure 15: writing in the air vs on the whiteboard.
//
// Four groups, each with 10 random letters written 10 times, once on the
// board and once in the air. Without the board the writing leaves the
// 2-D plane, degrading the distance inference: the paper reports ~91% on
// the board dropping about 8 points in the air (still above 80%).
#include "bench_common.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Figure 15", "Writing in air vs on the whiteboard");
  const std::array<std::string, 4> groups{
      "ACELMOSUWZ", "BDFGHJKNPQ", "IRTVXYAEMS", "CLOUWZBGKT"};
  Table t({"Group", "Board acc (%)", "In-air acc (%)", "Delta (pts)"});
  const int reps = 2 * bench::reps_scale();
  RunningStats board_all, air_all;
  bench::Stopwatch watch;
  bench::TrialTimes times;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    auto board_cfg = bench::default_trial(eval::System::kPolarDraw,
                                          2000 + 31 * g);
    board_cfg.synth.in_air = false;
    auto air_cfg = board_cfg;
    air_cfg.synth.in_air = true;
    std::vector<eval::TrialResult> results;
    const double board = eval::letter_accuracy(
        groups[g], reps, board_cfg, nullptr, bench::n_threads(), &results);
    times.add(results);
    const double air = eval::letter_accuracy(
        groups[g], reps, air_cfg, nullptr, bench::n_threads(), &results);
    times.add(results);
    board_all.push(board);
    air_all.push(air);
    t.add_row({std::to_string(g + 1), fmt(board * 100.0, 1),
               fmt(air * 100.0, 1), fmt((board - air) * 100.0, 1)});
  }
  const double elapsed = watch.seconds();
  bench::emit(t, "fig15_air");
  std::cout << "\nMeans: board " << fmt(board_all.mean() * 100.0, 1)
            << "%, air " << fmt(air_all.mean() * 100.0, 1)
            << "% (paper: ~91% board, ~8 points lower in air, air >80%).\n";
  times.report(std::cout, elapsed);
  std::cout << "\n";
}

static void BM_InAirTrial(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 5);
  cfg.synth.in_air = true;
  for (auto _ : state) {
    cfg.seed += 1;
    benchmark::DoNotOptimize(eval::run_trial("U", cfg).all_correct);
  }
}
BENCHMARK(BM_InAirTrial);

int main(int argc, char** argv) {
  const bench::Session session("fig15");
  run_experiment();
  return session.finish(argc, argv);
}
