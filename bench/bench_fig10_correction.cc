// Figure 10: recovered pen trajectory before and after the initial
// azimuthal-angle correction.
//
// The initial azimuth is seeded at a sector boundary (Eq. 2) and can be
// off by up to a sector width; when a sector crossing reveals the error,
// Eq. 10 rotates the recovered trajectory back. We run the pipeline
// directly so the accumulated correction is observable, and compare the
// Procrustes distance with the rotation applied vs suppressed on the
// trials where a correction actually fired.
#include "bench_common.h"

#include <cmath>

#include "common/angles.h"
#include "core/polardraw.h"
#include "recognition/classifier.h"
#include "recognition/procrustes.h"
#include "sim/scene.h"

using namespace polardraw;

namespace {

struct Outcome {
  double correction_deg = 0.0;
  double pre_cm = 0.0;   // rotation-clamped Procrustes without Eq. 10
  double post_cm = 0.0;  // and with it
  bool pre_ok = false;   // classification outcome without Eq. 10
  bool post_ok = false;  // and with it
};

// The standard Procrustes metric is itself rotation-invariant, so a
// global tilt is invisible to it; score with the rotation clamped to a
// few degrees so the tilt the correction removes actually registers.
double clamped_distance(const std::vector<Vec2>& truth,
                        const std::vector<Vec2>& traj) {
  const auto a = recognition::resample_by_arclength(truth, 64);
  const auto b = recognition::resample_by_arclength(traj, 64);
  return recognition::procrustes(a, b, deg2rad(5.0)).rms_distance * 100.0;
}

Outcome run_one(char letter, std::uint64_t seed) {
  eval::TrialConfig cfg = bench::default_trial(eval::System::kPolarDraw, seed);
  eval::apply_system_layout(cfg);
  cfg.scene.seed = seed;
  sim::Scene scene(cfg.scene);
  Rng rng(seed * 7919 + 13);
  const auto trace =
      handwriting::synthesize(std::string(1, letter), cfg.synth, rng);
  const auto reports = scene.run(trace);
  const core::PhaseCalibration cal{scene.reader().port_phase_offsets()};
  const auto apos = scene.antenna_board_positions();
  const auto truth = handwriting::flatten_strokes(trace.ground_truth);

  static const recognition::LetterClassifier classifier;
  Outcome out;
  {
    core::PolarDraw tracker(cfg.algo, apos[0], apos[1], 0.12);
    const auto res = tracker.track(reports, &cal);
    out.correction_deg = rad2deg(res.azimuth_correction_rad);
    out.post_cm = clamped_distance(truth, res.trajectory);
    out.post_ok = classifier.classify(res.trajectory).letter == letter;
  }
  {
    auto algo = cfg.algo;
    algo.apply_rotation_correction = false;
    core::PolarDraw tracker(algo, apos[0], apos[1], 0.12);
    const auto res = tracker.track(reports, &cal);
    out.pre_cm = clamped_distance(truth, res.trajectory);
    out.pre_ok = classifier.classify(res.trajectory).letter == letter;
  }
  return out;
}

}  // namespace

static void run_experiment() {
  bench::banner("Figure 10", "Azimuthal-angle correction: before vs after");
  Table t({"Letter", "correction (deg)", "pre (cm)", "post (cm)"});
  RunningStats pre_corrected, post_corrected;
  int pre_ok = 0, post_ok = 0;
  int fired = 0, total = 0;
  const int reps = 4 * bench::reps_scale();
  for (char c : std::string("CLOSUWZ")) {
    for (int r = 0; r < reps; ++r) {
      const auto o = run_one(c, 410 + 97 * r + c);
      ++total;
      if (std::fabs(o.correction_deg) < 0.5) continue;
      ++fired;
      pre_corrected.push(o.pre_cm);
      post_corrected.push(o.post_cm);
      pre_ok += o.pre_ok ? 1 : 0;
      post_ok += o.post_ok ? 1 : 0;
      if (fired <= 10) {
        t.add_row({std::string(1, c), fmt(o.correction_deg, 0),
                   fmt(o.pre_cm, 1), fmt(o.post_cm, 1)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nCorrections fired on " << fired << "/" << total
            << " trials; on those, rotation-clamped Procrustes pre="
            << fmt(pre_corrected.mean(), 2)
            << " cm vs post=" << fmt(post_corrected.mean(), 2)
            << " cm; letters recognized pre=" << pre_ok << "/" << fired
            << " vs post=" << post_ok << "/" << fired << ".\n"
            << "Paper reference: Fig. 10 shows a visibly tilted trajectory "
               "straightened by the correction.\n\n";
}

static void BM_TrackOneLetter(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_one('S', ++seed).post_cm);
  }
}
BENCHMARK(BM_TrackOneLetter);

int main(int argc, char** argv) {
  const bench::Session session("fig10");
  run_experiment();
  return session.finish(argc, argv);
}
