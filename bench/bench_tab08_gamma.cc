// Table 8: recognition accuracy vs the inter-antenna polarization angle.
//
// The two antennas are mounted at +/- gamma from the Z axis. Small gamma
// keeps sector crossings frequent (the correction mechanism fires often);
// large gamma widens sector 2 so crossings rarely happen and accuracy
// falls. The paper: flat at 15/30/45 degrees (90-92%), dropping to 85%
// at 60 and 80% at 75 degrees.
#include "bench_common.h"

#include "common/angles.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Table 8", "Accuracy vs inter-antenna angle gamma");
  Table t({"gamma (deg)", "Accuracy (%)", "Paper (%)"});
  const int paper[5] = {92, 90, 91, 85, 80};
  const int sweep[5] = {15, 30, 45, 60, 75};
  const int reps = 2 * bench::reps_scale();
  bench::Stopwatch watch;
  bench::TrialTimes times;
  for (int i = 0; i < 5; ++i) {
    auto cfg = bench::default_trial(eval::System::kPolarDraw,
                                    1200 + static_cast<std::uint64_t>(i));
    cfg.scene.gamma_rad = deg2rad(static_cast<double>(sweep[i]));
    std::vector<eval::TrialResult> results;
    const double acc = eval::letter_accuracy(
        bench::ten_letters(), reps, cfg, nullptr, bench::n_threads(), &results);
    times.add(results);
    t.add_row({std::to_string(sweep[i]), fmt(acc * 100.0, 1),
               std::to_string(paper[i])});
  }
  bench::emit(t, "tab08_gamma");
  std::cout << "\nExpected shape: flat for gamma <= 45 degrees, degrading "
               "beyond as sector crossings become rare.\n";
  times.report(std::cout, watch.seconds());
  std::cout << "\n";
}

static void BM_TrialWideGamma(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 3);
  cfg.scene.gamma_rad = deg2rad(60.0);
  for (auto _ : state) {
    cfg.seed += 1;
    benchmark::DoNotOptimize(eval::run_trial("U", cfg).all_correct);
  }
}
BENCHMARK(BM_TrialWideGamma);

int main(int argc, char** argv) {
  const bench::Session session("tab08");
  run_experiment();
  return session.finish(argc, argv);
}
