// Table 6: recognition accuracy with and without polarization.
//
// The paper's headline ablation: removing polarization angle estimation
// drops letter accuracy from 91% to 23% (~4x). We reproduce the strict
// reading (no orientation model at all -- no rotational direction
// estimation, no Eq. 10 correction) and additionally report a charitable
// variant that keeps the phase-trend translational direction decode, to
// show where the information actually lives on this substrate.
#include "bench_common.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Table 6", "Gain of using polarization");
  const int reps = 3 * bench::reps_scale();
  Table t({"Algorithm", "Accuracy (%)", "Paper (%)"});
  const struct {
    eval::System system;
    const char* paper;
  } rows[] = {
      {eval::System::kPolarDraw, "91"},
      {eval::System::kPolarDrawNoPol, "23"},
      {eval::System::kPolarDrawNoPolPhaseDir, "-"},
  };
  double full = 0.0, ablated = 0.0;
  bench::Stopwatch watch;
  bench::TrialTimes times;
  for (const auto& row : rows) {
    auto cfg = bench::default_trial(row.system, 600);
    std::vector<eval::TrialResult> results;
    const double acc = eval::letter_accuracy(
        bench::ten_letters(), reps, cfg, nullptr, bench::n_threads(), &results);
    times.add(results);
    if (row.system == eval::System::kPolarDraw) full = acc;
    if (row.system == eval::System::kPolarDrawNoPol) ablated = acc;
    t.add_row({to_string(row.system), fmt(acc * 100.0, 1), row.paper});
  }
  bench::emit(t, "tab06_ablation");
  std::cout << "\nFull / strict-ablated ratio: "
            << fmt(full / std::max(ablated, 1e-6), 1)
            << "x (paper: ~4x). The charitable variant shows how much the "
               "phase-trend fallback recovers on this substrate.\n";
  times.report(std::cout, watch.seconds());
  std::cout << "\n";
}

static void BM_AblatedTrial(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDrawNoPol, 8);
  for (auto _ : state) {
    cfg.seed += 1;
    benchmark::DoNotOptimize(eval::run_trial("O", cfg).all_correct);
  }
}
BENCHMARK(BM_AblatedTrial);

int main(int argc, char** argv) {
  const bench::Session session("tab06");
  run_experiment();
  return session.finish(argc, argv);
}
