// Figure 20: qualitative gallery of recovered trajectories.
//
// One letter traced by all three systems next to the ground truth. The
// paper notes the recoveries are stretched/rotated versions of the truth
// (especially at the stroke ends) but all preserve the letter's profile.
#include "bench_common.h"

#include "recognition/procrustes.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Figure 20", "Recovered trajectories, one letter per system");
  const char letter = 'B';
  const std::uint64_t seed = 4242;

  auto plot = [](const std::vector<Vec2>& pts) {
    std::vector<std::pair<double, double>> xy;
    for (const auto& p : pts) xy.emplace_back(p.x, p.y);
    return ascii_plot(xy, 44, 14);
  };

  // Ground truth comes from any trial's synthesis (identical seed).
  auto cfg = bench::default_trial(eval::System::kPolarDraw, seed);
  const auto first = eval::run_trial(std::string(1, letter), cfg);
  std::cout << "--- ground truth ('" << letter << "') ---\n"
            << plot(recognition::resample_by_arclength(first.ground_truth, 300))
            << "\n";

  for (auto sys : {eval::System::kPolarDraw, eval::System::kRfIdraw4,
                   eval::System::kTagoram4}) {
    auto scfg = bench::default_trial(sys, seed);
    const auto res = eval::run_trial(std::string(1, letter), scfg);
    std::cout << "--- " << to_string(sys) << " (procrustes "
              << fmt(res.procrustes_m * 100.0, 1) << " cm, recognized '"
              << res.recognized << "') ---\n"
              << plot(res.trajectory) << "\n";
  }
  std::cout << "Paper reference: all three recoveries preserve the basic "
               "letter profile, with stretching/rotation mostly at the "
               "start and end of the trajectory.\n\n";
}

static void BM_AsciiRender(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 4242);
  const auto res = eval::run_trial("B", cfg);
  std::vector<std::pair<double, double>> xy;
  for (const auto& p : res.trajectory) xy.emplace_back(p.x, p.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ascii_plot(xy, 44, 14));
  }
}
BENCHMARK(BM_AsciiRender);

int main(int argc, char** argv) {
  const bench::Session session("fig20");
  run_experiment();
  return session.finish(argc, argv);
}
