// Design ablations (DESIGN.md section 5): quantifies the choices the
// paper makes implicitly -- Viterbi vs greedy decoding, the hyperbola
// emission term, the averaging window, the HMM grid resolution, and the
// vmax displacement bound.
#include "bench_common.h"

#include "common/angles.h"

using namespace polardraw;

namespace {

bench::TrialTimes g_times;

double run_variant(const char* label,
                   const std::function<void(eval::TrialConfig&)>& mutate,
                   Table& t, int reps) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 1500);
  mutate(cfg);
  std::vector<eval::TrialResult> results;
  const double acc = eval::letter_accuracy(
      bench::ten_letters(), reps, cfg, nullptr, bench::n_threads(), &results);
  g_times.add(results);
  t.add_row({label, fmt(acc * 100.0, 1)});
  return acc;
}

}  // namespace

static void run_experiment() {
  bench::banner("Design ablations", "DESIGN.md section 5 choices");
  const int reps = 2 * bench::reps_scale();
  bench::Stopwatch watch;
  Table t({"Variant", "Accuracy (%)"});
  run_variant("baseline (paper defaults as calibrated)", [](auto&) {}, t, reps);
  run_variant("particle filter instead of the HMM (paper's future work)",
              [](auto& c) { c.algo.use_particle_filter = true; }, t, reps);
  run_variant("Kalman filter instead of the HMM (paper's future work)",
              [](auto& c) { c.algo.use_kalman_filter = true; }, t, reps);
  run_variant("greedy argmax instead of Viterbi",
              [](auto& c) { c.algo.use_viterbi = false; }, t, reps);
  run_variant("no hyperbola constraint",
              [](auto& c) { c.algo.use_hyperbola_constraint = false; }, t,
              reps);
  run_variant("paper-literal hyperbola weight (sharpness 1)",
              [](auto& c) { c.algo.hyperbola_sharpness = 1.0; }, t, reps);
  run_variant("25 ms averaging window",
              [](auto& c) { c.algo.window_s = 0.025; }, t, reps);
  run_variant("100 ms averaging window",
              [](auto& c) { c.algo.window_s = 0.100; }, t, reps);
  run_variant("1 cm grid blocks",
              [](auto& c) { c.algo.block_m = 0.010; }, t, reps);
  run_variant("2 mm grid blocks",
              [](auto& c) { c.algo.block_m = 0.002; }, t, reps);
  run_variant("vmax 0.1 m/s",
              [](auto& c) { c.algo.vmax_mps = 0.1; }, t, reps);
  run_variant("vmax 0.4 m/s",
              [](auto& c) { c.algo.vmax_mps = 0.4; }, t, reps);
  run_variant("no spurious-phase rejection",
              [](auto& c) { c.algo.spurious_phase_threshold_rad = 100.0; }, t,
              reps);
  run_variant("strict paper spurious threshold (0.2 rad)",
              [](auto& c) { c.algo.spurious_phase_threshold_rad = 0.2; }, t,
              reps);
  run_variant("no direction smoothing",
              [](auto& c) { c.algo.smooth_directions = false; }, t, reps);
  run_variant("no Table-4 noise floor",
              [](auto& c) { c.algo.min_phase_delta_rad = 1e-4; }, t, reps);
  run_variant("phase-noise margin on the Eq. 5 bound (0.1 rad)",
              [](auto& c) { c.algo.phase_noise_margin_rad = 0.1; }, t, reps);
  run_variant("no tag-offset compensation",
              [](auto& c) { c.algo.tag_offset_m = 0.0; }, t, reps);
  run_variant("FCC frequency hopping enabled (hop-aware preprocessing)",
              [](auto& c) { c.scene.reader.frequency_hopping = true; }, t,
              reps);
  run_variant("no Eq.10 rotation correction",
              [](auto& c) { c.algo.apply_rotation_correction = false; }, t,
              reps);
  bench::emit(t, "ablation_design");
  std::cout << "\nEach row isolates one design choice; the baseline row is "
               "the calibrated default configuration.\n";
  g_times.report(std::cout, watch.seconds());
  std::cout << "\n";
}

static void BM_ViterbiVsGreedy(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 2);
  cfg.algo.use_viterbi = state.range(0) == 1;
  for (auto _ : state) {
    cfg.seed += 1;
    benchmark::DoNotOptimize(eval::run_trial("O", cfg).procrustes_m);
  }
}
BENCHMARK(BM_ViterbiVsGreedy)->Arg(0)->Arg(1);

int main(int argc, char** argv) {
  const bench::Session session("ablation_design");
  run_experiment();
  return session.finish(argc, argv);
}
