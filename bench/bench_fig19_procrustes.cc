// Figure 19: CDF of the Procrustes distance between ground truth and the
// recovered trajectories, three systems.
//
// Five random letters x 10 repetitions at 20 cm writing size. The paper
// reports 90th-percentile errors of 11.3 cm (Tagoram-4), 10.2 cm
// (RF-IDraw-4) and 13.8 cm (PolarDraw-2): the two-antenna system is
// comparable but slightly behind the four-antenna rigs.
#include "bench_common.h"

#include "recognition/procrustes.h"

using namespace polardraw;

static void run_experiment() {
  bench::banner("Figure 19", "CDF of Procrustes distance, three systems");
  const eval::System systems[3] = {eval::System::kPolarDraw,
                                   eval::System::kRfIdraw4,
                                   eval::System::kTagoram4};
  const char* paper_p90[3] = {"13.8", "10.2", "11.3"};
  const int reps = 4 * bench::reps_scale();

  std::array<std::vector<double>, 3> errors;
  bench::Stopwatch watch;
  bench::TrialTimes times;
  for (int s = 0; s < 3; ++s) {
    // One batch per system: trial seeds are counter-derived, so the CDF
    // is identical at any thread count.
    std::vector<eval::TrialSpec> specs;
    for (char c : std::string("CMOSU")) {
      for (int r = 0; r < reps; ++r) {
        eval::TrialSpec spec{std::string(1, c),
                             bench::default_trial(systems[s], 8100 + s)};
        spec.cfg.seed = eval::trial_seed(spec.cfg.seed, specs.size());
        specs.push_back(std::move(spec));
      }
    }
    const auto results = eval::run_trials(specs, bench::n_threads());
    times.add(results);
    for (const auto& res : results) {
      errors[s].push_back(res.procrustes_m * 100.0);
    }
  }

  Table t({"Percentile", "PolarDraw-2 (cm)", "RF-IDraw-4 (cm)",
           "Tagoram-4 (cm)"});
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0}) {
    t.add_row({fmt(p, 0), fmt(percentile(errors[0], p), 1),
               fmt(percentile(errors[1], p), 1),
               fmt(percentile(errors[2], p), 1)});
  }
  bench::emit(t, "fig19_procrustes");
  std::cout << "\nPaper 90th percentiles: PolarDraw " << paper_p90[0]
            << " cm, RF-IDraw " << paper_p90[1] << " cm, Tagoram "
            << paper_p90[2]
            << " cm (medians ~10 vs ~8 cm). Expected shape: the 2-antenna "
               "system is close behind the 4-antenna rigs.\n";
  times.report(std::cout, watch.seconds());
  std::cout << "\n";
}

static void BM_ProcrustesScoring(benchmark::State& state) {
  auto cfg = bench::default_trial(eval::System::kPolarDraw, 5);
  const auto res = eval::run_trial("M", cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recognition::procrustes_distance(
        res.ground_truth, res.trajectory));
  }
}
BENCHMARK(BM_ProcrustesScoring);

int main(int argc, char** argv) {
  const bench::Session session("fig19");
  run_experiment();
  return session.finish(argc, argv);
}
