// Developer diagnostic: per-stage accuracy of the PolarDraw pipeline
// against simulation ground truth. Not part of the paper reproduction;
// useful when tuning the substrate or the tracker.
#include <cmath>
#include <iostream>
#include <iomanip>
#include <string>

#include "common/angles.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/polardraw.h"
#include "handwriting/synthesizer.h"
#include "recognition/procrustes.h"
#include "sim/scene.h"

using namespace polardraw;

int main(int argc, char** argv) {
  const std::string text = argc > 1 ? argv[1] : "C";

  sim::SceneConfig scene_cfg;
  scene_cfg.seed = 42;
  sim::Scene scene(scene_cfg);

  handwriting::SynthesisConfig synth_cfg;
  Rng rng(7);
  const auto trace = handwriting::synthesize(text, synth_cfg, rng);
  const auto reports = scene.run(trace);

  core::PolarDrawConfig cfg;
  cfg.gamma_rad = scene_cfg.gamma_rad;
  const auto apos = scene.antenna_board_positions();
  core::PolarDraw tracker(cfg, apos[0], apos[1], scene_cfg.antenna_standoff_m);
  core::PhaseCalibration cal{scene.reader().port_phase_offsets()};
  const auto result = tracker.track(reports, &cal);

  // Ground-truth velocity at window centers.
  auto truth_pos = [&](double t) {
    return sim::tag_at_time(trace, t).position.xy();
  };

  RunningStats dir_dot_rot, dir_dot_trans, dist_err;
  int rot_sign_ok = 0, rot_total = 0;
  int trans_quad_ok = 0, trans_total = 0;
  int moving_idle = 0, idle_total = 0;

  for (const auto& d : result.diagnostics) {
    const Vec2 v =
        (truth_pos(d.t_s + 0.025) - truth_pos(d.t_s - 0.025)) / 0.05;
    const double speed = v.norm();
    const Vec2 tdir = speed > 1e-4 ? v / speed : Vec2{};
    const double true_step = speed * 0.05;

    if (d.motion == core::MotionType::kRotational && speed > 0.01) {
      ++rot_total;
      const double dot = d.direction.direction.dot(tdir);
      dir_dot_rot.push(dot);
      if (d.direction.direction.x * tdir.x > 0) ++rot_sign_ok;
    } else if (d.motion == core::MotionType::kTranslational && speed > 0.01) {
      ++trans_total;
      const double dot = d.direction.direction.dot(tdir);
      dir_dot_trans.push(dot);
      if (dot > 0.3) ++trans_quad_ok;
    } else if (d.motion == core::MotionType::kIdle) {
      ++idle_total;
      if (speed > 0.02) ++moving_idle;
    }
    if (d.distance.valid && speed > 1e-3) {
      // How well does the annulus contain the true displacement?
      dist_err.push(true_step >= d.distance.lower_m - 0.002 &&
                            true_step <= d.distance.upper_m + 0.002
                        ? 1.0
                        : 0.0);
    }
  }

  std::cout << "windows=" << result.diagnostics.size()
            << " rot=" << result.rotational_windows
            << " trans=" << result.translational_windows
            << " idle=" << result.idle_windows << "\n";
  std::cout << "rotational: mean dir-dot=" << fmt(dir_dot_rot.mean(), 3)
            << " lr-sign-ok=" << rot_sign_ok << "/" << rot_total << "\n";
  std::cout << "translational: mean dir-dot=" << fmt(dir_dot_trans.mean(), 3)
            << " quad-ok=" << trans_quad_ok << "/" << trans_total << "\n";
  std::cout << "idle-but-moving=" << moving_idle << "/" << idle_total << "\n";
  std::cout << "annulus-contains-truth=" << fmt(dist_err.mean(), 3) << "\n";

  // Preprocessing health: how often do windows carry usable data?
  const auto windows = core::preprocess(reports, cfg, &cal);
  int both_phase = 0, both_rss = 0;
  for (const auto& w : windows) {
    if (w.both_phase_valid()) ++both_phase;
    if (w.both_rss_valid()) ++both_rss;
  }
  std::cout << "windows both-phase-valid=" << both_phase << "/"
            << windows.size() << " both-rss-valid=" << both_rss << "/"
            << windows.size() << "\n";

  const auto truth = handwriting::flatten_strokes(trace.ground_truth);
  std::cout << "procrustes=" << fmt(recognition::procrustes_distance(
                                        truth, result.trajectory) * 100.0, 2)
            << " cm  correction=" << fmt(rad2deg(result.azimuth_correction_rad), 1)
            << " deg\n";

  if (argc > 2 && std::string(argv[2]) == "win") {
    // Raw window signals: RSS deltas and phase validity.
    double prev_rss[2] = {0, 0};
    bool have[2] = {false, false};
    std::cout << "\n  w | ds0    | ds1    | ph0 ph1 | true-speed(cm/s)\n";
    int i = 0;
    for (const auto& w : windows) {
      double ds[2] = {0, 0};
      for (int a = 0; a < 2; ++a) {
        if (w.rss_valid[a] && have[a]) ds[a] = w.rss_dbm[a] - prev_rss[a];
        if (w.rss_valid[a]) { prev_rss[a] = w.rss_dbm[a]; have[a] = true; }
      }
      const Vec2 v =
          (truth_pos(w.t_s + 0.025) - truth_pos(w.t_s - 0.025)) / 0.05;
      std::cout << std::setw(3) << i++ << " | " << fmt(ds[0], 2) << " | "
                << fmt(ds[1], 2) << " |  " << (w.phase_valid[0] ? 'v' : '.')
                << "   " << (w.phase_valid[1] ? 'v' : '.') << "  | "
                << fmt(v.norm() * 100, 1) << "\n";
      if (i > 60) break;
    }
    return 0;
  }

  if (argc > 2 && std::string(argv[2]) == "rot") {
    // Rotation-path detail: tracked vs true azimuth and sense.
    auto true_azimuth = [&](double t) {
      const auto tag = sim::tag_at_time(trace, t);
      return rad2deg(std::atan2(tag.dipole_axis.z, tag.dipole_axis.x));
    };
    std::cout << "\n  t   | true-az | est-az | sector | sense | true-daz\n";
    for (const auto& d : result.diagnostics) {
      if (d.motion != core::MotionType::kRotational) continue;
      const double az0 = true_azimuth(d.t_s - 0.025);
      const double az1 = true_azimuth(d.t_s + 0.025);
      const char* sense =
          d.direction.sense == core::RotationSense::kClockwise        ? "cw "
          : d.direction.sense == core::RotationSense::kCounterClockwise ? "ccw"
                                                                        : "?  ";
      std::cout << fmt(d.t_s, 2) << " | " << fmt((az0 + az1) / 2, 0) << " | "
                << fmt(rad2deg(d.direction.alpha_a_rad), 0) << " | "
                << static_cast<int>(d.direction.sector) << " | " << sense
                << " | " << fmt(az1 - az0, 1) << "\n";
    }
    return 0;
  }

  if (argc > 2) {  // verbose: decoded steps vs truth
    std::cout << "\n w | type | est-step(cm)      | true-step(cm)     | "
                 "lower..upper (cm)\n";
    for (std::size_t i = 1; i < result.trajectory.size() &&
                            i < result.diagnostics.size() + 1 && i < 60;
         ++i) {
      const auto& d = result.diagnostics[i - 1];
      const Vec2 est = result.trajectory[i] - result.trajectory[i - 1];
      const Vec2 tru =
          truth_pos(d.t_s + 0.025) - truth_pos(d.t_s - 0.025);
      const char* ty = d.motion == core::MotionType::kRotational  ? "rot "
                       : d.motion == core::MotionType::kTranslational
                           ? "trn "
                           : "idle";
      std::cout << std::setw(3) << i << "| " << ty << " | (" << fmt(est.x * 100, 1)
                << "," << fmt(est.y * 100, 1) << ") | (" << fmt(tru.x * 100, 1)
                << "," << fmt(tru.y * 100, 1) << ") | "
                << fmt(d.distance.lower_m * 100, 2) << ".."
                << fmt(d.distance.upper_m * 100, 2)
                << (d.distance.valid ? "" : " INVALID") << "\n";
    }
  }
  return 0;
}
