// "Whiteboard in the air": the paper's headline scenario.
//
// A user writes a short word in free space (no physical board). The pen
// wanders out of the writing plane, which degrades the distance inference
// but PolarDraw still recovers a recognizable trajectory. The example
// tracks the same word on the board and in the air and prints both
// recoveries plus the lexicon-based recognition result.
//
//   $ ./air_writing [word]
#include <iostream>
#include <string>

#include "common/table.h"
#include "eval/harness.h"
#include "recognition/classifier.h"

using namespace polardraw;

int main(int argc, char** argv) {
  const std::string word = argc > 1 ? argv[1] : "SUN";

  for (const bool in_air : {false, true}) {
    eval::TrialConfig cfg;
    cfg.system = eval::System::kPolarDraw;
    cfg.seed = 2024;
    cfg.synth.in_air = in_air;
    const auto res = eval::run_trial(word, cfg);

    std::cout << "=== " << (in_air ? "in the air" : "on the whiteboard")
              << " ===\n";
    std::cout << "wrote '" << word << "', recognized '" << res.recognized
              << "' (" << (res.all_correct ? "correct" : "wrong")
              << "), Procrustes " << fmt(res.procrustes_m * 100.0, 1)
              << " cm, " << res.report_count << " tag reads\n";
    std::vector<std::pair<double, double>> pts;
    for (const auto& p : res.trajectory) pts.emplace_back(p.x, p.y);
    std::cout << ascii_plot(pts, 64, 14) << "\n";
  }
  std::cout << "The paper (section 5.2.3) reports ~8 points lower accuracy "
               "in the air: without the board the writing leaves the 2-D "
               "plane and the displacement inference degrades.\n";
  return 0;
}
