// Multi-user writing (the paper's section 7 extension): two tagged pens
// write simultaneously; the reader's slotted inventory interleaves reads
// from both; the application de-multiplexes by EPC and runs one PolarDraw
// tracker per pen.
//
//   $ ./two_pens [letterA] [letterB]
#include <iostream>
#include <map>
#include <string>

#include "common/table.h"
#include "core/polardraw.h"
#include "handwriting/synthesizer.h"
#include "recognition/classifier.h"
#include "sim/scene.h"

using namespace polardraw;

int main(int argc, char** argv) {
  const std::string letter_a = argc > 1 ? argv[1] : "M";
  const std::string letter_b = argc > 2 ? argv[2] : "Z";

  sim::SceneConfig scene_cfg;
  scene_cfg.seed = 77;
  sim::Scene scene(scene_cfg);

  // Two writers: one on the left half of the board, one on the right.
  Rng rng(9);
  handwriting::SynthesisConfig synth_a;
  synth_a.auto_center = false;
  synth_a.origin = {0.15, 0.15};
  handwriting::SynthesisConfig synth_b;
  synth_b.auto_center = false;
  synth_b.origin = {0.62, 0.15};
  synth_b.user = handwriting::user_style(3);
  const auto trace_a = handwriting::synthesize(letter_a, synth_a, rng);
  const auto trace_b = handwriting::synthesize(letter_b, synth_b, rng);

  // Inventory both tags in one session; reads interleave per Gen2 slots.
  const std::vector<rfid::TagEntry> tags{
      {0xA1, [&](double t) { return sim::tag_at_time(trace_a, t); }},
      {0xB2, [&](double t) { return sim::tag_at_time(trace_b, t); }},
  };
  scene.reader().select_modulation(tags[0].state);
  const double t_end =
      std::max(trace_a.duration_s, trace_b.duration_s);
  const auto reports =
      scene.reader().inventory_population(tags, 0.0, t_end);
  std::cout << "Inventoried " << reports.size()
            << " reads across both pens over " << fmt(t_end, 1) << " s\n";

  // De-multiplex by EPC and track each pen independently.
  std::map<std::uint32_t, rfid::TagReportStream> streams;
  for (const auto& r : reports) streams[r.epc].push_back(r);

  core::PolarDrawConfig algo;
  algo.gamma_rad = scene_cfg.gamma_rad;
  const auto apos = scene.antenna_board_positions();
  const core::PhaseCalibration cal{scene.reader().port_phase_offsets()};
  const recognition::LetterClassifier classifier;

  const std::map<std::uint32_t, std::string> truth{
      {0xA1, letter_a}, {0xB2, letter_b}};
  for (const auto& [epc, stream] : streams) {
    core::PolarDraw tracker(algo, apos[0], apos[1], 0.12);
    const auto res = tracker.track(stream, &cal);
    const auto cls = classifier.classify(res.trajectory);
    std::cout << "\nPen EPC 0x" << std::hex << epc << std::dec << ": "
              << stream.size() << " reads (~"
              << fmt(static_cast<double>(stream.size()) / std::max(t_end, 1e-9), 0)
              << " Hz), wrote '" << truth.at(epc) << "', recognized '"
              << cls.letter << "'\n";
    std::vector<std::pair<double, double>> pts;
    for (const auto& p : res.trajectory) pts.emplace_back(p.x, p.y);
    std::cout << ascii_plot(pts, 48, 12) << "\n";
  }
  std::cout << "Per-pen read rate halves with two tags in the field -- the "
               "deployment cost of the multi-user extension.\n";
  return 0;
}
