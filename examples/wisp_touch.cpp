// Sensor-augmented tag (the paper's section 7 WISP proposal): a simulated
// accelerometer on the pen detects when the tip touches the whiteboard,
// letting the application drop pen-up transit segments from the recovered
// trail -- cleaner multi-stroke letters without any RF change.
//
//   $ ./wisp_touch [letter]
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/polardraw.h"
#include "handwriting/synthesizer.h"
#include "recognition/classifier.h"
#include "rfid/wisp.h"
#include "sim/scene.h"

using namespace polardraw;

int main(int argc, char** argv) {
  const std::string letter = argc > 1 ? argv[1] : "H";

  sim::SceneConfig scene_cfg;
  scene_cfg.seed = 5;
  sim::Scene scene(scene_cfg);
  Rng rng(11);
  handwriting::SynthesisConfig synth;
  const auto trace = handwriting::synthesize(letter, synth, rng);
  const auto reports = scene.run(trace);

  // RF trajectory, as usual.
  core::PolarDrawConfig algo;
  algo.gamma_rad = scene_cfg.gamma_rad;
  const auto apos = scene.antenna_board_positions();
  core::PolarDraw tracker(algo, apos[0], apos[1], 0.12);
  const core::PhaseCalibration cal{scene.reader().port_phase_offsets()};
  const auto result = tracker.track(reports, &cal);

  // WISP accelerometer stream + touch detection, windowed like the tracker.
  rfid::WispConfig wcfg;
  Rng wisp_rng(12);
  const auto accel = rfid::simulate_wisp(trace, wcfg, wisp_rng);
  const auto touch = rfid::detect_touch(accel, algo.window_s);

  // Drop pen-up windows from the trail (offset by the tracker's warmup trim).
  std::vector<Vec2> ink_only;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const std::size_t w = i + static_cast<std::size_t>(algo.warmup_windows);
    if (w < touch.size() && !touch[w]) continue;
    ink_only.push_back(result.trajectory[i]);
  }

  int touch_windows = 0;
  for (bool b : touch) touch_windows += b ? 1 : 0;
  std::cout << "Touch detector: " << touch_windows << "/" << touch.size()
            << " windows classified pen-down\n";

  const recognition::LetterClassifier classifier;
  auto show = [&](const char* label, const std::vector<Vec2>& traj) {
    std::vector<std::pair<double, double>> pts;
    for (const auto& p : traj) pts.emplace_back(p.x, p.y);
    std::cout << "\n--- " << label << " (recognized '"
              << classifier.classify(traj).letter << "') ---\n"
              << ascii_plot(pts, 52, 14);
  };
  show("full RF trail (transits included)", result.trajectory);
  show("WISP-gated trail (pen-down only)", ink_only);
  std::cout << "\nThe paper proposes exactly this: a sensor tag 'to detect "
               "whether the pen is touching the whiteboard or not'.\n";
  return 0;
}
