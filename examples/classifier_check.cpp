// Developer diagnostic: classifier sanity on clean and jittered
// ground-truth polylines (no RF involved). The classifier must be ~perfect
// on clean glyphs; if not, tracking accuracy is irrelevant.
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "handwriting/synthesizer.h"
#include "recognition/classifier.h"

using namespace polardraw;

int main() {
  recognition::LetterClassifier cls;
  Rng rng(3);

  int clean_ok = 0, wobble_ok = 0, noise_ok = 0, n = 0;
  for (char c : handwriting::alphabet()) {
    // Clean template polyline.
    const auto& g = handwriting::glyph_for(c);
    const auto poly = handwriting::flatten_strokes(
        handwriting::place_glyph(g, {0.2, 0.15}, 0.2));
    const auto r0 = cls.classify(poly);
    if (r0.letter == c) ++clean_ok;
    else std::cout << "clean " << c << " -> " << r0.letter << "\n";

    // Synthesized (wobbled) trace ink.
    handwriting::SynthesisConfig scfg;
    const auto trace = handwriting::synthesize(std::string(1, c), scfg, rng);
    const auto ink = handwriting::trace_ink_polyline(trace);
    const auto r1 = cls.classify(ink);
    if (r1.letter == c) ++wobble_ok;
    else std::cout << "wobble " << c << " -> " << r1.letter << "\n";

    // Wobbled + 1 cm gaussian point noise + 1 cm grid quantization
    // (roughly what the tracker hands back).
    auto noisy = ink;
    for (auto& p : noisy) {
      p.x += rng.gaussian(0.0, 0.01);
      p.y += rng.gaussian(0.0, 0.01);
      p.x = std::round(p.x * 100.0) / 100.0;
      p.y = std::round(p.y * 100.0) / 100.0;
    }
    const auto r2 = cls.classify(noisy);
    if (r2.letter == c) ++noise_ok;
    else std::cout << "noisy " << c << " -> " << r2.letter << "\n";
    ++n;
  }
  std::cout << "clean " << clean_ok << "/" << n << ", wobble " << wobble_ok
            << "/" << n << ", noisy " << noise_ok << "/" << n << "\n";
  return 0;
}
