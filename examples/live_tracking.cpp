// Streaming-style consumption of the PolarDraw pipeline.
//
// Shows how an application would sit on top of the library: feed the raw
// LLRP-style tag reports as they arrive (here: chunks of the simulated
// stream), re-run the tracker on the growing prefix, and render the
// evolving trail -- i.e. the "electronic whiteboard" loop. Also prints
// the per-window motion classification so the rotational/translational
// split of section 3.3 is visible.
//
//   $ ./live_tracking [letter]
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/polardraw.h"
#include "handwriting/synthesizer.h"
#include "sim/scene.h"

using namespace polardraw;

int main(int argc, char** argv) {
  const std::string text = argc > 1 ? argv[1] : "S";

  sim::SceneConfig scene_cfg;
  scene_cfg.seed = 99;
  sim::Scene scene(scene_cfg);
  Rng rng(123);
  handwriting::SynthesisConfig synth;
  const auto trace = handwriting::synthesize(text, synth, rng);
  const auto reports = scene.run(trace);

  core::PolarDrawConfig algo;
  algo.gamma_rad = scene_cfg.gamma_rad;
  const auto apos = scene.antenna_board_positions();
  core::PolarDraw tracker(algo, apos[0], apos[1], 0.12);
  const core::PhaseCalibration cal{scene.reader().port_phase_offsets()};

  // Consume the stream in 1-second chunks, as a UI would.
  const double t_end = reports.back().timestamp_s;
  rfid::TagReportStream prefix;
  std::size_t cursor = 0;
  for (double t = 1.0;; t += 1.0) {
    while (cursor < reports.size() && reports[cursor].timestamp_s <= t) {
      prefix.push_back(reports[cursor++]);
    }
    const auto result = tracker.track(prefix, &cal);
    std::cout << "t=" << fmt(std::min(t, t_end), 1) << "s  reads="
              << prefix.size() << "  windows=" << result.trajectory.size()
              << "  (rot " << result.rotational_windows << " / trans "
              << result.translational_windows << " / idle "
              << result.idle_windows << ")\n";
    if (t >= t_end) {
      std::vector<std::pair<double, double>> pts;
      for (const auto& p : result.trajectory) pts.emplace_back(p.x, p.y);
      std::cout << "\nFinal trail:\n" << ascii_plot(pts, 60, 16) << "\n";
      break;
    }
  }
  return 0;
}
