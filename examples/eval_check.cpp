// Developer diagnostic: coarse accuracy snapshot across systems, used
// while calibrating the simulation substrate to the paper's bands.
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "eval/harness.h"

using namespace polardraw;

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::string letters = argc > 2 ? argv[2] : "ACLMOSUVWZ";

  Table t({"system", "letter acc", "median procrustes (cm)", "p90 (cm)"});
  for (const eval::System sys :
       {eval::System::kPolarDraw, eval::System::kPolarDrawNoPol,
        eval::System::kPolarDrawNoPolPhaseDir,
        eval::System::kTagoram2, eval::System::kTagoram4,
        eval::System::kRfIdraw4}) {
    eval::TrialConfig cfg;
    cfg.system = sys;
    cfg.seed = 11;
    int correct = 0, total = 0;
    std::vector<double> errs;
    for (char c : letters) {
      for (int r = 0; r < reps; ++r) {
        cfg.seed = cfg.seed * 2654435761u + 17;
        const auto res = eval::run_trial(std::string(1, c), cfg);
        ++total;
        if (res.all_correct) ++correct;
        errs.push_back(res.procrustes_m * 100.0);
      }
    }
    t.add_row({to_string(sys),
               fmt(100.0 * correct / std::max(total, 1), 1) + "%",
               fmt(median(errs), 1), fmt(percentile(errs, 90.0), 1)});
  }
  t.print(std::cout);
  return 0;
}
