// Quickstart: synthesize one handwritten letter, run the full PolarDraw
// pipeline on the simulated RFID reports, and print the recovered
// trajectory, tracking error, and classification.
//
//   $ ./quickstart [letter]
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/polardraw.h"
#include "handwriting/synthesizer.h"
#include "recognition/classifier.h"
#include "recognition/procrustes.h"
#include "sim/scene.h"

using namespace polardraw;

int main(int argc, char** argv) {
  const char letter = argc > 1 ? argv[1][0] : 'C';

  // 1. Build the scene: two linearly-polarized antennas above a whiteboard.
  sim::SceneConfig scene_cfg;
  scene_cfg.seed = 42;
  sim::Scene scene(scene_cfg);

  // 2. Synthesize a user writing the letter (20 cm tall).
  handwriting::SynthesisConfig synth_cfg;
  Rng rng(7);
  const auto trace = handwriting::synthesize(std::string(1, letter), synth_cfg, rng);
  std::cout << "Synthesized '" << letter << "': " << trace.samples.size()
            << " pen samples over " << trace.duration_s << " s\n";

  // 3. Run the reader: raw (timestamp, antenna, RSS, phase) reports.
  const auto reports = scene.run(trace);
  std::cout << "Reader delivered " << reports.size() << " tag reports using "
            << rfid::to_string(scene.reader().active_modulation()) << "\n";

  // 4. Track with PolarDraw.
  core::PolarDrawConfig cfg;
  cfg.gamma_rad = scene_cfg.gamma_rad;
  const auto apos = scene.antenna_board_positions();
  core::PolarDraw tracker(cfg, apos[0], apos[1], scene_cfg.antenna_standoff_m);
  core::PhaseCalibration cal{scene.reader().port_phase_offsets()};
  const auto result = tracker.track(reports, &cal);
  std::cout << "Tracked " << result.trajectory.size() << " windows ("
            << result.rotational_windows << " rotational, "
            << result.translational_windows << " translational, "
            << result.idle_windows << " idle)\n";

  // 5. Evaluate: Procrustes distance vs ground truth + classification.
  const auto truth = handwriting::flatten_strokes(trace.ground_truth);
  const double err_m =
      recognition::procrustes_distance(truth, result.trajectory);
  std::cout << "Procrustes distance vs ground truth: " << err_m * 100.0
            << " cm\n";

  recognition::LetterClassifier classifier;
  const auto cls = classifier.classify(result.trajectory);
  std::cout << "Classified as '" << cls.letter << "' (score " << cls.score
            << ", runner-up '" << cls.second << "')\n";

  // 6. Show the recovered trajectory.
  std::vector<std::pair<double, double>> pts;
  for (const auto& p : result.trajectory) pts.emplace_back(p.x, p.y);
  std::cout << "\nRecovered trajectory:\n" << ascii_plot(pts) << "\n";
  return 0;
}
