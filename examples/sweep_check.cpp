// Developer diagnostic: scripted azimuth sweep against the two-antenna rig
// to verify the Table 3 RSS-trend logic empirically (the basis of the
// rotational direction estimator). Holds the pen position fixed at several
// board locations and rotates the azimuth clockwise then counter-clockwise
// through each sector, printing the observed RSS trends.
#include <cmath>
#include <iostream>

#include "common/angles.h"
#include "common/table.h"
#include "common/units.h"
#include "em/propagation.h"
#include "sim/scene.h"

using namespace polardraw;

int main() {
  sim::SceneConfig cfg;
  cfg.gamma_rad = deg2rad(15.0);
  const auto rig = sim::build_rig(cfg);
  const em::TxConfig tx;

  const double g = rad2deg(cfg.gamma_rad);
  std::cout << "Sector bounds (deg from +X): sector3=(" << g << ","
            << 90.0 - g << ") sector2=(" << 90.0 - g << "," << 90.0 + g
            << ") sector1=(" << 90.0 + g << "," << 180.0 - g << ")\n";
  const auto xz_angle = [](const em::ReaderAntenna& a) {
    return rad2deg(std::atan2(a.polarization_axis.z, a.polarization_axis.x));
  };
  std::cout << "ant0 pol angle (X-Z)=" << xz_angle(rig[0])
            << " deg, ant1 pol angle (X-Z)=" << xz_angle(rig[1]) << " deg\n\n";

  for (const Vec2 pos : {Vec2{0.3, 0.25}, Vec2{0.5, 0.3}, Vec2{0.7, 0.2}}) {
    std::cout << "--- pen at (" << pos.x << ", " << pos.y << ") ---\n";
    Table t({"azim(deg)", "rss0", "rss1", "ds0(cw)", "ds1(cw)", "winner"});
    double prev0 = 0.0, prev1 = 0.0;
    bool first = true;
    // Sweep azimuth downward (clockwise) from 160 to 20 degrees.
    for (double az = 160.0; az >= 20.0; az -= 10.0) {
      em::PenAngles angles{deg2rad(30.0), deg2rad(az)};
      const em::Tag tag = em::make_pen_tag(Vec3{pos, 0.0}, angles);
      const auto l0 = em::evaluate_los_link(rig[0], tag, tx);
      const auto l1 = em::evaluate_los_link(rig[1], tag, tx);
      const double r0 = ratio_to_db(std::norm(l0.response));
      const double r1 = ratio_to_db(std::norm(l1.response));
      if (!first) {
        const double ds0 = r0 - prev0, ds1 = r1 - prev1;
        const char* winner = std::fabs(ds0) > std::fabs(ds1) ? "|ds0|" : "|ds1|";
        t.add_row({fmt(az, 0), fmt(r0, 1), fmt(r1, 1), fmt(ds0, 2),
                   fmt(ds1, 2), winner});
      }
      prev0 = r0;
      prev1 = r1;
      first = false;
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
